//! The resident MPQ optimizer service: one long-lived cluster
//! multiplexing many concurrent optimization sessions.
//!
//! Where [`MpqOptimizer`](crate::MpqOptimizer) answers a single query,
//! [`MpqService`] keeps the simulated shared-nothing cluster standing and
//! streams queries through it: [`MpqService::submit`] dispatches a
//! session's partition tasks and returns a [`QueryHandle`] immediately,
//! [`MpqService::poll`] / [`MpqService::wait`] drive a scheduler that
//! interleaves reply collection, straggler suspicion and task re-issue
//! across **all** in-flight sessions. Every wire message carries its
//! session's [`QueryId`], so replies are routed to the owning session no
//! matter how submissions and completions interleave.
//!
//! Fault tolerance is per session: each session owns its retry budget and
//! strike counter under the service-wide [`RetryPolicy`], and because an
//! MPQ task is stateless, a worker crash poisons only the partition
//! ranges it held — every other session keeps streaming. A worker found
//! dead at submission time is routed around the same way a lost range is.
//!
//! The single-query [`MpqOptimizer`](crate::MpqOptimizer) entry points
//! are thin wrappers over this service (spawn, submit one query, wait,
//! shut down), so there is exactly one master-side code path.

use crate::message::{MasterMessage, WorkerReply};
use crate::optimizer::{MpqConfig, MpqError, MpqMetrics, MpqOutcome, RetryPolicy};
use bytes::Bytes;
use mpq_cluster::{
    AbandonedList, Cluster, ClusterError, Control, NetworkMetrics, QueryId, Wire, WorkerCtx,
    WorkerLogic,
};
use mpq_cost::Objective;
use mpq_dp::{optimize_partition_id_cached, PlanCache, WorkerStats};
use mpq_model::Query;
use mpq_partition::{effective_workers, PlanSpace};
use mpq_plan::{CacheWeight, Plan, PruningPolicy};
use std::collections::BTreeMap;
use std::time::Instant;

/// Most results a service parks for unredeemed handles before evicting
/// the oldest: a client that drops handles without redeeming them must
/// not grow resident-service memory without bound over an unbounded
/// query stream.
const MAX_PARKED_RESULTS: usize = 4096;

/// Ticket for one submitted query. Redeem it with [`MpqService::wait`]
/// (or check it with [`MpqService::poll`]); results are delivered exactly
/// once per handle.
///
/// Dropping a handle **abandons** its session: the id lands on the
/// service's abandoned list, and the next scheduler entry (`submit`,
/// `poll` or `wait` on any handle) frees the session's master-side state
/// and any parked result, so abandoned queries do not accumulate until
/// service teardown. Dropping an already-redeemed handle is a no-op.
#[derive(Debug)]
pub struct QueryHandle {
    id: QueryId,
    abandoned: AbandonedList,
}

impl QueryHandle {
    /// The session id this handle tracks.
    pub fn id(&self) -> QueryId {
        self.id
    }
}

impl Drop for QueryHandle {
    fn drop(&mut self) {
        // Redeemed sessions are already gone from the service's maps, so
        // reaping their id is a no-op; only truly abandoned sessions are
        // affected.
        self.abandoned.push(self.id.0);
    }
}

/// Worker-side logic: decode the task, optimize the assigned partition
/// range, reply once per task.
///
/// MPQ tasks are stateless by design (the paper's deployment argument),
/// so the worker holds no per-**session** state: each message is a
/// complete unit of work, and the session-tagged reply is routed by the
/// runtime. What a worker *may* hold is a **shard-local cross-query
/// cache** of finished partition results, keyed by the canonical query
/// signature — pure acceleration state that is never required for
/// correctness, costs no network traffic, and is simply lost with the
/// worker on a crash (a replacement starts cold and recomputes).
pub(crate) struct MpqWorker {
    cache: PlanCache,
}

impl MpqWorker {
    pub(crate) fn new(cache_bytes: usize) -> MpqWorker {
        MpqWorker {
            cache: PlanCache::new(cache_bytes),
        }
    }
}

impl WorkerLogic for MpqWorker {
    fn on_message(&mut self, _query: QueryId, payload: Bytes, ctx: &mut WorkerCtx) -> Control {
        let msg = match MasterMessage::from_bytes(&payload) {
            Ok(m) => m,
            // A malformed task means a protocol bug; reply with an
            // impossible range echo so the master fails that session with
            // a typed error instead of hanging. The worker itself stays
            // up — on a resident cluster it is still serving every other
            // session.
            Err(_) => {
                ctx.send_to_master(
                    WorkerReply {
                        first_partition: u64::MAX,
                        partition_count: 0,
                        plans: Vec::new(),
                        stats: WorkerStats::default(),
                        cache_hits: 0,
                        cache_misses: 0,
                    }
                    .to_bytes(),
                );
                return Control::Continue;
            }
        };
        let policy = PruningPolicy::new(msg.objective, msg.query.num_tables());
        let mut plans: Vec<Plan> = Vec::new();
        let mut stats = WorkerStats::default();
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        for part_id in msg.first_partition..msg.first_partition + msg.partition_count {
            let (out, hit) = optimize_partition_id_cached(
                &msg.query,
                msg.space,
                msg.objective,
                part_id,
                msg.total_partitions,
                &mut self.cache,
            );
            if self.cache.is_enabled() {
                if hit {
                    cache_hits += 1;
                    ctx.metrics()
                        .record_cache_hit(out.plans.weight_bytes() as u64);
                } else {
                    cache_misses += 1;
                    ctx.metrics().record_cache_miss();
                }
            }
            plans.extend(out.plans);
            // Times and work add up over sequential partitions; memory is
            // the peak, i.e. the max over partitions.
            stats.splits_tried += out.stats.splits_tried;
            stats.plans_generated += out.stats.plans_generated;
            stats.optimize_micros += out.stats.optimize_micros;
            stats.stored_sets = stats.stored_sets.max(out.stats.stored_sets);
            stats.total_entries = stats.total_entries.max(out.stats.total_entries);
        }
        // Worker-local prune across its partitions: completed plans, so
        // orders no longer matter.
        policy.final_prune(&mut plans);
        ctx.send_to_master(
            WorkerReply {
                first_partition: msg.first_partition,
                partition_count: msg.partition_count,
                plans,
                stats,
                cache_hits,
                cache_misses,
            }
            .to_bytes(),
        );
        Control::Continue
    }
}

/// Master-side state of one in-flight optimization session.
struct Session {
    query: Query,
    space: PlanSpace,
    objective: Objective,
    partitions: u64,
    assignment: Vec<(u64, u64)>,
    range_done: Vec<bool>,
    /// Latest worker each range was issued to, and whether it was ever
    /// re-issued (i.e. an earlier assignee might still deliver it).
    range_worker: Vec<usize>,
    range_reissued: Vec<bool>,
    /// Cumulative send-sequence number at the range's latest assignee
    /// when its task went out: by per-worker FIFO, once that worker's
    /// reply count reaches this mark, an outstanding range's reply is
    /// provably lost, not queued.
    range_mark: Vec<u64>,
    worker_stats: Vec<WorkerStats>,
    plans: Vec<Plan>,
    completed: usize,
    retries_left: u32,
    strikes: u32,
    retries: u64,
    replies_received: u64,
    duplicate_replies: u64,
    retry_task_bytes: u64,
    cache_hits: u64,
    cache_misses: u64,
    start: Instant,
    /// When this session last saw one of its own replies; the scheduler's
    /// per-session straggler-suspicion clock.
    last_progress: Instant,
}

impl Session {
    fn task(&self, range: usize) -> MasterMessage {
        let (first_partition, partition_count) = self.assignment[range];
        MasterMessage {
            query: self.query.clone(),
            space: self.space,
            objective: self.objective,
            first_partition,
            partition_count,
            total_partitions: self.partitions,
        }
    }

    fn outstanding(&self) -> Vec<usize> {
        (0..self.assignment.len())
            .filter(|&i| !self.range_done[i])
            .collect()
    }
}

/// A long-lived MPQ optimizer service over one resident cluster. See the
/// module docs.
pub struct MpqService {
    cluster: Cluster,
    retry: RetryPolicy,
    next_id: u64,
    /// Ordered maps so scheduler passes visit sessions in submission
    /// order — deterministic across runs, like the rest of the simulator.
    sessions: BTreeMap<u64, Session>,
    done: BTreeMap<u64, Result<MpqOutcome, MpqError>>,
    /// Per-worker loss-detection state: tasks sent to each worker,
    /// replies seen from it (FIFO stream position), and when it last
    /// replied at all.
    tasks_sent: Vec<u64>,
    replies_seen: Vec<u64>,
    last_reply_from: Vec<Instant>,
    /// Session ids whose [`QueryHandle`] was dropped unredeemed; reaped
    /// (state freed) on the next scheduler entry.
    abandoned: AbandonedList,
}

impl MpqService {
    /// Spawns the resident cluster: `workers` worker threads under
    /// `config`'s latency model, fault plan and retry policy, shared by
    /// every subsequently submitted query.
    pub fn spawn(workers: usize, config: MpqConfig) -> Result<MpqService, MpqError> {
        assert!(workers >= 1, "at least one worker required");
        let cluster = Cluster::spawn_with_faults(workers, config.latency, &config.faults, |_| {
            MpqWorker::new(config.cache_bytes)
        })
        .map_err(MpqError::Cluster)?;
        Ok(MpqService {
            cluster,
            retry: config.retry,
            next_id: 0,
            sessions: BTreeMap::new(),
            done: BTreeMap::new(),
            tasks_sent: vec![0; workers],
            replies_seen: vec![0; workers],
            last_reply_from: vec![Instant::now(); workers],
            abandoned: AbandonedList::new(),
        })
    }

    /// Number of resident worker nodes.
    pub fn num_workers(&self) -> usize {
        self.cluster.num_workers()
    }

    /// Sessions submitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.sessions.len()
    }

    /// Finished results parked for handles that have not redeemed them
    /// yet (bounded by the eviction cap; shrinks when abandoned handles
    /// are reaped).
    pub fn parked_results(&self) -> usize {
        self.done.len()
    }

    /// The resident cluster's network counters (cumulative across every
    /// session the service has served).
    pub fn metrics(&self) -> &NetworkMetrics {
        self.cluster.metrics()
    }

    /// Submits `query` for optimization over all resident workers (one
    /// partition per worker, capped by the query's partition limit) and
    /// returns immediately with a handle. Task messages go out before
    /// this returns; collection happens in [`MpqService::poll`] /
    /// [`MpqService::wait`].
    pub fn submit(
        &mut self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
    ) -> Result<QueryHandle, MpqError> {
        let partitions =
            effective_workers(space, query.num_tables(), self.cluster.num_workers() as u64);
        let assignment: Vec<(u64, u64)> = (0..partitions).map(|p| (p, 1)).collect();
        self.submit_assigned(query, space, objective, partitions, assignment)
    }

    /// Submits `query` with an explicit `(first_partition, count)` range
    /// per worker — the weighted/oversubscribed entry points build their
    /// assignment and call this.
    pub fn submit_assigned(
        &mut self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
        partitions: u64,
        assignment: Vec<(u64, u64)>,
    ) -> Result<QueryHandle, MpqError> {
        assert!(!assignment.is_empty(), "a session needs at least one range");
        assert!(
            assignment.len() <= self.cluster.num_workers(),
            "more partition ranges than resident workers"
        );
        self.reap_abandoned();
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let ranges = assignment.len();
        let mut session = Session {
            query: query.clone(),
            space,
            objective,
            partitions,
            assignment,
            range_done: vec![false; ranges],
            range_worker: (0..ranges).collect(),
            range_reissued: vec![false; ranges],
            range_mark: vec![0; ranges],
            worker_stats: vec![WorkerStats::default(); self.cluster.num_workers()],
            plans: Vec::new(),
            completed: 0,
            retries_left: self.retry.max_retries,
            strikes: 0,
            retries: 0,
            replies_received: 0,
            duplicate_replies: 0,
            retry_task_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
            start: Instant::now(),
            last_progress: Instant::now(),
        };
        // Dispatch: one task message per range, range i preferring worker
        // i. On a resident cluster a worker may already be dead from an
        // earlier session's faults; with recovery enabled such ranges are
        // routed to a live worker at once (not a retry — the range was
        // never issued, so the budget is untouched).
        self.cluster.metrics().record_round();
        for range in 0..ranges {
            let preferred = session.range_worker[range];
            match self
                .cluster
                .send(preferred, id, session.task(range).to_bytes(), true)
            {
                Ok(()) => {
                    self.tasks_sent[preferred] += 1;
                    session.range_mark[range] = self.tasks_sent[preferred];
                }
                Err(err @ ClusterError::WorkerLost { .. }) if self.retry.max_retries > 0 => {
                    let mut routed = false;
                    for target in live_workers(&self.cluster) {
                        if target == preferred {
                            continue;
                        }
                        if self
                            .cluster
                            .send(target, id, session.task(range).to_bytes(), true)
                            .is_ok()
                        {
                            self.tasks_sent[target] += 1;
                            session.range_worker[range] = target;
                            session.range_mark[range] = self.tasks_sent[target];
                            routed = true;
                            break;
                        }
                    }
                    if !routed {
                        return Err(MpqError::Cluster(err));
                    }
                }
                Err(err) => return Err(MpqError::Cluster(err)),
            }
        }
        self.sessions.insert(id.0, session);
        Ok(QueryHandle {
            id,
            abandoned: self.abandoned.clone(),
        })
    }

    /// Non-blocking check: drains replies that have already arrived,
    /// applies per-session straggler suspicion, and returns the result
    /// once the handle's session has finished. A result is delivered
    /// exactly once; after `Some`, the handle is spent.
    pub fn poll(&mut self, handle: &QueryHandle) -> Option<Result<MpqOutcome, MpqError>> {
        self.reap_abandoned();
        loop {
            if self.done.contains_key(&handle.id.0) {
                break;
            }
            match self.cluster.try_recv() {
                Ok((worker, qid, payload)) => self.route(worker, qid, payload),
                Err(ClusterError::Timeout { .. }) => {
                    // Nothing waiting right now: run the suspicion pass;
                    // if no session was due, hand control back.
                    if !self.check_suspicions() {
                        break;
                    }
                }
                Err(err) => {
                    self.fail_all(err);
                    break;
                }
            }
        }
        self.done.remove(&handle.id.0)
    }

    /// Blocks until the handle's session finishes, driving every
    /// in-flight session's collection and recovery in the meantime.
    ///
    /// # Panics
    /// Panics if the handle's result was already taken via
    /// [`MpqService::poll`].
    pub fn wait(&mut self, handle: QueryHandle) -> Result<MpqOutcome, MpqError> {
        self.reap_abandoned();
        loop {
            if let Some(result) = self.done.remove(&handle.id.0) {
                return result;
            }
            assert!(
                self.sessions.contains_key(&handle.id.0),
                "query handle {} already resolved",
                handle.id
            );
            let received = match self.retry.timeout {
                Some(t) => self.cluster.recv_timeout(t),
                None => self.cluster.recv(),
            };
            match received {
                Ok((worker, qid, payload)) => self.route(worker, qid, payload),
                Err(ClusterError::Timeout { .. }) => {}
                Err(err) => self.fail_all(err),
            }
            self.check_suspicions();
        }
    }

    /// Shuts the resident cluster down, joining every worker thread.
    /// In-flight sessions are abandoned (their handles become useless), so
    /// drain the service before calling this.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }

    /// Frees the state of sessions whose handle was dropped unredeemed:
    /// in-flight master-side session state and parked results. Late
    /// replies for a reaped session are discarded as duplicates by the
    /// reply router's unknown-session path. Called on every scheduler
    /// entry; public so long-idle callers can reap eagerly.
    pub fn reap_abandoned(&mut self) {
        for id in self.abandoned.drain() {
            self.sessions.remove(&id);
            self.done.remove(&id);
        }
    }

    /// Routes one session-tagged reply to its owning session and advances
    /// that session's state machine.
    fn route(&mut self, worker: usize, qid: QueryId, payload: Bytes) {
        // Loss-detection evidence, advanced for every reply no matter
        // which session owns it: the worker's FIFO stream position and
        // its last-heard-from clock.
        self.replies_seen[worker] += 1;
        self.last_reply_from[worker] = Instant::now();
        enum Advance {
            Pending,
            Finished,
            Failed(MpqError),
        }
        let advance = {
            let Some(session) = self.sessions.get_mut(&qid.0) else {
                // A reply for a session that already finished: a
                // speculative duplicate landing late. Account for it;
                // nothing to route.
                self.cluster.metrics().record_duplicate();
                return;
            };
            session.last_progress = Instant::now();
            session.replies_received += 1;
            match WorkerReply::from_bytes(&payload) {
                Err(source) => Advance::Failed(MpqError::Decode { worker, source }),
                Ok(reply) => {
                    let found = session.assignment.iter().position(|&(f, c)| {
                        f == reply.first_partition && c == reply.partition_count
                    });
                    match found {
                        None => Advance::Failed(MpqError::Protocol { worker }),
                        Some(idx) if session.range_done[idx] => {
                            // A speculative duplicate: the range was
                            // already completed by another worker. Count
                            // the wasted work, discard the (identical)
                            // plans.
                            session.duplicate_replies += 1;
                            self.cluster.metrics().record_duplicate();
                            Advance::Pending
                        }
                        Some(idx) => {
                            session.range_done[idx] = true;
                            session.completed += 1;
                            session.strikes = 0;
                            accumulate(&mut session.worker_stats[worker], &reply.stats);
                            session.cache_hits += reply.cache_hits;
                            session.cache_misses += reply.cache_misses;
                            session.plans.extend(reply.plans);
                            if session.completed == session.assignment.len() {
                                Advance::Finished
                            } else {
                                Advance::Pending
                            }
                        }
                    }
                }
            }
        };
        match advance {
            Advance::Pending => {}
            Advance::Finished => self.finish(qid),
            Advance::Failed(err) => self.fail(qid, err),
        }
    }

    /// Per-session straggler suspicion: run the recovery pass for every
    /// session that has gone a full retry timeout without one of its own
    /// replies — re-issue its most suspect range (dead assignee first),
    /// or fail it once its budgets are spent. The clock is per session,
    /// so a busy reply stream from other sessions can never starve a
    /// stuck session's recovery. Returns whether any session fired.
    fn check_suspicions(&mut self) -> bool {
        let Some(t) = self.retry.timeout else {
            return false;
        };
        let due: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.last_progress.elapsed() >= t)
            .map(|(&id, _)| id)
            .collect();
        for &raw in &due {
            if let Some(session) = self.sessions.get_mut(&raw) {
                session.last_progress = Instant::now();
            }
            // One suspicion event per session, mirrored in the metrics so
            // the retries <= timeouts ledger stays balanced.
            self.cluster.metrics().record_timeout();
            self.session_timeout(QueryId(raw));
        }
        !due.is_empty()
    }

    fn session_timeout(&mut self, qid: QueryId) {
        let Some(session) = self.sessions.get_mut(&qid.0) else {
            return;
        };
        let cluster = &self.cluster;
        let outstanding = session.outstanding();
        debug_assert!(!outstanding.is_empty(), "finished sessions are removed");
        let t = self
            .retry
            .timeout
            .expect("suspicion passes require a timeout");
        // Evidence that an outstanding range will never complete on its
        // own. On a resident cluster, "no reply for a while" is NOT such
        // evidence — the range may simply be queued behind other
        // sessions' tasks — so speculation fires only on one of:
        //  * a dead assignee (liveness probe);
        //  * a FIFO overtake: the assignee has already replied to a task
        //    issued *after* this range's, so per-worker FIFO proves this
        //    range's reply was lost on the wire, not queued;
        //  * a reply-silent assignee: nothing from that worker for a full
        //    suspicion window (a straggler, or a loss with no later
        //    traffic to prove it by overtake).
        let dead = outstanding
            .iter()
            .copied()
            .find(|&i| !cluster.is_worker_alive(session.range_worker[i]));
        let overtaken = outstanding
            .iter()
            .copied()
            .find(|&i| self.replies_seen[session.range_worker[i]] >= session.range_mark[i]);
        let silent = outstanding
            .iter()
            .copied()
            .find(|&i| self.last_reply_from[session.range_worker[i]].elapsed() >= t);
        let suspect = dead.or(overtaken).or(silent);
        if session.retries_left == 0 {
            // A dead assignee whose range was never re-issued is hopeless
            // — no earlier speculative assignee exists to deliver it — so
            // fail at once. A re-issued range's *earlier* assignee may
            // still be straggling toward a reply, so spend the strike
            // budget waiting before giving up.
            if let Some(i) = dead {
                if !session.range_reissued[i] {
                    let worker = session.range_worker[i];
                    self.fail(qid, MpqError::WorkerLost { worker });
                    return;
                }
            }
            if suspect.is_none() {
                // No evidence of loss: the cluster is just busy.
                return;
            }
            session.strikes += 1;
            if session.strikes >= self.retry.max_strikes {
                let err = match dead {
                    Some(i) => MpqError::WorkerLost {
                        worker: session.range_worker[i],
                    },
                    None => MpqError::RetriesExhausted {
                        outstanding: outstanding.len(),
                    },
                };
                self.fail(qid, err);
            }
            return;
        }
        // Speculative re-execution: re-issue the most suspect range (dead
        // assignee, then FIFO-overtaken, then reply-silent) to a
        // surviving worker, idle workers first. With no evidence at all,
        // the session is merely queued — leave it alone.
        let Some(victim) = suspect else {
            return;
        };
        let busy: Vec<usize> = outstanding
            .iter()
            .map(|&i| session.range_worker[i])
            .collect();
        let mut candidates = live_workers(cluster);
        candidates.sort_by_key(|&w| (busy.contains(&w), w));
        let mut reissued = false;
        for target in candidates {
            let bytes = session.task(victim).to_bytes();
            let len = bytes.len() as u64;
            if cluster.send(target, qid, bytes, true).is_ok() {
                cluster.metrics().record_retry(target);
                self.tasks_sent[target] += 1;
                session.range_mark[victim] = self.tasks_sent[target];
                session.retry_task_bytes += len;
                session.retries += 1;
                session.range_worker[victim] = target;
                session.range_reissued[victim] = true;
                session.retries_left -= 1;
                reissued = true;
                break;
            }
        }
        if !reissued {
            self.fail(qid, MpqError::Cluster(ClusterError::AllWorkersLost));
        }
    }

    /// Completes a session: FinalPrune over the O(m) collected plans,
    /// metrics assembly, result parked for the handle.
    fn finish(&mut self, qid: QueryId) {
        let session = self
            .sessions
            .remove(&qid.0)
            .expect("finishing an active session");
        let mut plans = session.plans;
        let policy = PruningPolicy::new(session.objective, session.query.num_tables());
        policy.final_prune(&mut plans);
        let network = self.cluster.metrics().snapshot();
        let metrics = MpqMetrics {
            total_micros: session.start.elapsed().as_micros() as u64,
            max_worker_micros: session
                .worker_stats
                .iter()
                .map(|s| s.optimize_micros)
                .max()
                .unwrap_or(0),
            max_worker_stored_sets: session
                .worker_stats
                .iter()
                .map(|s| s.stored_sets)
                .max()
                .unwrap_or(0),
            network,
            worker_stats: session.worker_stats,
            partitions: session.partitions,
            workers_used: session.assignment.len(),
            retries: session.retries,
            duplicate_replies: session.duplicate_replies,
            replies_received: session.replies_received,
            retry_task_bytes: session.retry_task_bytes,
            cache_hits: session.cache_hits,
            cache_misses: session.cache_misses,
        };
        self.park_result(qid, Ok(MpqOutcome { plans, metrics }));
    }

    fn fail(&mut self, qid: QueryId, err: MpqError) {
        self.sessions.remove(&qid.0);
        self.park_result(qid, Err(err));
    }

    /// Parks a finished session's result for its handle, evicting the
    /// oldest unredeemed result beyond [`MAX_PARKED_RESULTS`] (abandoned
    /// handles must not leak memory on a long-lived service).
    fn park_result(&mut self, qid: QueryId, result: Result<MpqOutcome, MpqError>) {
        self.done.insert(qid.0, result);
        while self.done.len() > MAX_PARKED_RESULTS {
            self.done.pop_first();
        }
    }

    /// The substrate itself is gone: every in-flight session fails.
    fn fail_all(&mut self, err: ClusterError) {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        for raw in ids {
            self.fail(QueryId(raw), MpqError::Cluster(err.clone()));
        }
    }
}

fn live_workers(cluster: &Cluster) -> Vec<usize> {
    (0..cluster.num_workers())
        .filter(|&w| cluster.is_worker_alive(w))
        .collect()
}

/// Accumulates a reply's counters into a worker's running stats (a worker
/// may execute several ranges under retries).
fn accumulate(into: &mut WorkerStats, s: &WorkerStats) {
    into.splits_tried += s.splits_tried;
    into.plans_generated += s.plans_generated;
    into.optimize_micros += s.optimize_micros;
    into.stored_sets = into.stored_sets.max(s.stored_sets);
    into.total_entries = into.total_entries.max(s.total_entries);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_dp::optimize_serial;
    use mpq_model::{WorkloadConfig, WorkloadGenerator};

    fn query(n: usize, seed: u64) -> Query {
        WorkloadGenerator::new(WorkloadConfig::paper_default(n), seed).next_query()
    }

    fn rel_eq(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * b.abs().max(1.0)
    }

    #[test]
    fn many_concurrent_sessions_on_one_cluster() {
        let mut svc = MpqService::spawn(4, MpqConfig::default()).unwrap();
        let queries: Vec<Query> = (0..12).map(|s| query(5 + (s as usize % 3), s)).collect();
        let handles: Vec<QueryHandle> = queries
            .iter()
            .map(|q| {
                svc.submit(q, PlanSpace::Linear, Objective::Single)
                    .expect("submit")
            })
            .collect();
        assert_eq!(svc.in_flight(), 12);
        // Wait in reverse submission order: routing, not luck, must match
        // each result to its query.
        for (q, handle) in queries.iter().zip(handles).rev() {
            let out = svc.wait(handle).expect("session completes");
            let reference = optimize_serial(q, PlanSpace::Linear, Objective::Single).plans[0]
                .cost()
                .time;
            assert!(rel_eq(out.plans[0].cost().time, reference));
        }
        assert_eq!(svc.in_flight(), 0);
        svc.shutdown();
    }

    #[test]
    fn poll_is_nonblocking_and_delivers_once() {
        let mut svc = MpqService::spawn(2, MpqConfig::default()).unwrap();
        let q = query(6, 1);
        let handle = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        let mut out = None;
        for _ in 0..10_000 {
            if let Some(r) = svc.poll(&handle) {
                out = Some(r.expect("session completes"));
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        let out = out.expect("poll eventually completes");
        let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
            .cost()
            .time;
        assert!(rel_eq(out.plans[0].cost().time, reference));
        // The result was delivered; the handle is spent.
        assert!(svc.poll(&handle).is_none());
        svc.shutdown();
    }

    #[test]
    fn sessions_have_independent_metrics() {
        let mut svc = MpqService::spawn(4, MpqConfig::default()).unwrap();
        let q = query(6, 2);
        let a = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        let b = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        let out_a = svc.wait(a).unwrap();
        let out_b = svc.wait(b).unwrap();
        // Per-session ledgers balance independently even though the
        // cluster-wide byte counters are shared.
        for out in [&out_a, &out_b] {
            assert_eq!(out.metrics.workers_used, 4);
            assert_eq!(
                out.metrics.replies_received,
                out.metrics.workers_used as u64 + out.metrics.duplicate_replies
            );
            assert_eq!(out.metrics.retries, 0);
        }
        svc.shutdown();
    }

    #[test]
    fn stuck_session_recovers_while_other_sessions_keep_the_stream_busy() {
        use mpq_cluster::{FaultAction, FaultPlan};
        use std::time::Duration;
        // Worker 1's very first reply (half of session A) is dropped; a
        // continuous stream of filler sessions then keeps replies flowing.
        // Suspicion is per session with FIFO loss-detection, so A's lost
        // range must be re-issued and completed *while* the stream is
        // busy — a global "time since any reply" clock would never fire,
        // starving A for as long as the stream lasts.
        let faults = FaultPlan {
            drop_prob: 0.02,
            ..FaultPlan::NONE
        }
        .with_seed_where(2, 4096, |s| s.action(1, 0) == FaultAction::DropReply)
        .expect("some seed drops worker 1's first reply");
        let config = MpqConfig {
            faults,
            retry: RetryPolicy::with_timeout(256, Duration::from_millis(10)),
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(2, config).unwrap();
        let q = query(8, 42);
        let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
            .cost()
            .time;
        let stuck = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        // Feed fillers one at a time, pacing each by ~2 ms of wall clock
        // while polling A, so the reply stream stays busy for far longer
        // than A's suspicion window.
        const FILLER_CAP: u64 = 200;
        let mut fillers: Vec<QueryHandle> = Vec::new();
        let mut stuck_result = None;
        let mut fillers_at_recovery = None;
        'stream: for seed in 0..FILLER_CAP {
            let fq = query(6, 1000 + seed);
            fillers.push(
                svc.submit(&fq, PlanSpace::Linear, Objective::Single)
                    .unwrap(),
            );
            for _ in 0..10 {
                if let Some(result) = svc.poll(&stuck) {
                    stuck_result = Some(result);
                    fillers_at_recovery = Some(seed + 1);
                    break 'stream;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let fillers_at_recovery = fillers_at_recovery
            .expect("the stuck session must recover during the busy stream, not after it drains");
        assert!(
            fillers_at_recovery < FILLER_CAP / 2,
            "recovery should come within the first half of the stream, \
             got {fillers_at_recovery}"
        );
        let out = stuck_result
            .unwrap()
            .expect("the dropped range is re-issued");
        assert!(rel_eq(out.plans[0].cost().time, reference));
        assert!(out.metrics.retries >= 1, "recovery must have fired");
        for handle in fillers {
            let out = svc.wait(handle).expect("fillers complete");
            assert_eq!(out.plans.len(), 1);
        }
        svc.shutdown();
    }

    #[test]
    fn warm_shard_caches_serve_repeated_queries_identically() {
        let config = MpqConfig {
            cache_bytes: 1 << 20,
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(4, config).unwrap();
        let q = query(7, 21);
        let cold = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .and_then(|h| svc.wait(h))
            .expect("cold run");
        assert_eq!(cold.metrics.cache_hits, 0);
        assert_eq!(cold.metrics.cache_misses, cold.metrics.partitions);
        let warm = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .and_then(|h| svc.wait(h))
            .expect("warm run");
        assert_eq!(
            warm.metrics.cache_hits, warm.metrics.partitions,
            "every partition repeats on the same worker"
        );
        assert_eq!(warm.plans, cold.plans, "hits are byte-identical");
        let s = svc.metrics().snapshot();
        assert_eq!(s.cache_hits, warm.metrics.cache_hits);
        assert!(s.cache_bytes_saved > 0);
        svc.shutdown();
    }

    #[test]
    fn caching_disabled_reports_no_cache_traffic() {
        let mut svc = MpqService::spawn(2, MpqConfig::default()).unwrap();
        let q = query(6, 22);
        for _ in 0..2 {
            let out = svc
                .submit(&q, PlanSpace::Linear, Objective::Single)
                .and_then(|h| svc.wait(h))
                .expect("run");
            assert_eq!(out.metrics.cache_hits, 0);
            assert_eq!(out.metrics.cache_misses, 0);
        }
        assert_eq!(svc.metrics().snapshot().cache_hits, 0);
        svc.shutdown();
    }

    /// Regression (ISSUE 4 satellite): dropping an unredeemed handle must
    /// free the session's master-side state instead of leaking it until
    /// service teardown.
    #[test]
    fn dropped_handles_release_session_state() {
        let mut svc = MpqService::spawn(2, MpqConfig::default()).unwrap();
        let q = query(6, 23);
        let abandoned = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .expect("submit");
        assert_eq!(svc.in_flight(), 1);
        drop(abandoned);
        // The next scheduler entry reaps the abandoned session; a second
        // query must stream through unaffected.
        let handle = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .expect("submit");
        assert_eq!(svc.in_flight(), 1, "the dropped session is gone");
        let out = svc.wait(handle).expect("live session completes");
        assert_eq!(out.plans.len(), 1);
        assert_eq!(svc.in_flight(), 0);
        // A completed-but-unredeemed result is reaped from the parked map
        // too once its handle drops: finish `parked`'s session by waiting
        // on a later driver session, then drop the handle unredeemed.
        let parked = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .expect("submit");
        while svc.parked_results() == 0 {
            // Waiting on driver sessions pumps the shared reply stream, so
            // `parked`'s session completes and its result is parked.
            let driver = svc
                .submit(&q, PlanSpace::Linear, Objective::Single)
                .expect("submit");
            let _ = svc.wait(driver).expect("driver completes");
        }
        drop(parked);
        svc.reap_abandoned();
        assert_eq!(svc.parked_results(), 0, "the parked result is freed");
        svc.shutdown();
    }

    #[test]
    fn resident_service_survives_worker_crashes_across_sessions() {
        use mpq_cluster::FaultPlan;
        use std::time::Duration;
        // One worker crashes on its very first task; every later session
        // must route around the corpse without fresh faults.
        let faults = FaultPlan::crash_on_first_task(4, 3);
        let config = MpqConfig {
            faults,
            retry: RetryPolicy::with_timeout(64, Duration::from_millis(20)),
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(4, config).unwrap();
        for seed in 0..6 {
            let q = query(6, seed);
            let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
                .cost()
                .time;
            let handle = svc
                .submit(&q, PlanSpace::Linear, Objective::Single)
                .expect("dead workers are routed around at submit");
            let out = svc.wait(handle).expect("recovery succeeds");
            assert!(rel_eq(out.plans[0].cost().time, reference), "seed {seed}");
        }
        assert!(svc.metrics().snapshot().crashes >= 1);
        svc.shutdown();
    }
}
