//! The resident MPQ optimizer service: one long-lived cluster
//! multiplexing many concurrent optimization sessions.
//!
//! Where [`MpqOptimizer`](crate::MpqOptimizer) answers a single query,
//! [`MpqService`] keeps the simulated shared-nothing cluster standing and
//! streams queries through it: [`MpqService::submit`] dispatches a
//! session's partition tasks and returns a [`QueryHandle`] immediately,
//! [`MpqService::poll`] / [`MpqService::wait`] drive a scheduler that
//! interleaves reply collection, straggler suspicion and task re-issue
//! across **all** in-flight sessions. Every wire message carries its
//! session's [`QueryId`], so replies are routed to the owning session no
//! matter how submissions and completions interleave.
//!
//! Fault tolerance is per session: each session owns its retry budget and
//! strike counter under the service-wide [`RetryPolicy`], and because an
//! MPQ task is stateless, a worker crash poisons only the partition
//! ranges it held — every other session keeps streaming. A worker found
//! dead at submission time is routed around the same way a lost range is.
//!
//! Beyond loss recovery, the scheduler performs **straggler-adaptive work
//! redistribution** (opt-in via [`StealPolicy`]): workers piggyback
//! fixed-size [`Progress`](mpq_cluster::Progress) reports on the reply
//! stream, and when one range's relative progress provably lags the rest
//! of its session, the master splits the range's *unstarted* remainder
//! into sub-ranges and re-issues them to idle workers. The same
//! range-echo duplicate suppression that makes speculative re-execution
//! exact makes stealing exact: the straggler's eventual full-range reply
//! reconciles against the split record, and overlapping plan
//! contributions cannot change cost bits or Pareto frontiers (FinalPrune
//! is a pure min/frontier over the candidate pool).
//!
//! The single-query [`MpqOptimizer`](crate::MpqOptimizer) entry points
//! are thin wrappers over this service (spawn, submit one query, wait,
//! shut down), so there is exactly one master-side code path.

// A server facade must never abort on caller error: every unwrap/expect
// on this master-side path is either removed or individually justified.

use crate::message::{MasterMessage, WorkerMsg, WorkerReply};
use crate::optimizer::{MpqConfig, MpqError, MpqMetrics, MpqOutcome, RetryPolicy, StealPolicy};
use bytes::Bytes;
use mpq_cluster::{
    AbandonedList, Cluster, ClusterError, Control, NetworkMetrics, QueryId, Transport, Wire,
    WireListener, WorkerCtx, WorkerLogic,
};
use mpq_cost::Objective;
use mpq_dp::{optimize_partition_id_cached_parallel, ParallelPolicy, PlanCache, WorkerStats};
use mpq_model::Query;
use mpq_partition::{effective_workers, PlanSpace};
use mpq_plan::{CacheWeight, Plan, PruningPolicy};
use std::collections::BTreeMap;
use std::time::Instant;

/// Most results a service parks for unredeemed handles before evicting
/// the oldest: a client that drops handles without redeeming them must
/// not grow resident-service memory without bound over an unbounded
/// query stream.
const MAX_PARKED_RESULTS: usize = 4096;

/// How long a no-timer [`MpqService::wait`] parks between clock-free
/// evidence passes: long enough to cost nothing, short enough that a
/// worker dying while the master is parked is noticed promptly.
const EVIDENCE_HEARTBEAT: std::time::Duration = std::time::Duration::from_millis(25);

/// Ticket for one submitted query. Redeem it with [`MpqService::wait`]
/// (or check it with [`MpqService::poll`]); results are delivered exactly
/// once per handle. Handles remember which service instance minted them,
/// so presenting one to a different service yields a typed
/// [`MpqError::UnknownHandle`] — never another session's result.
///
/// Dropping a handle **abandons** its session: the id lands on the
/// service's abandoned list, and the next scheduler entry (`submit`,
/// `poll` or `wait` on any handle) frees the session's master-side state
/// and any parked result, so abandoned queries do not accumulate until
/// service teardown. Dropping an already-redeemed handle is a no-op.
#[must_use = "redeem the handle with `wait`/`poll`, or drop it explicitly to abandon the query"]
#[derive(Debug)]
pub struct QueryHandle {
    id: QueryId,
    service: u64,
    abandoned: AbandonedList,
}

impl QueryHandle {
    /// The session id this handle tracks.
    pub fn id(&self) -> QueryId {
        self.id
    }
}

impl Drop for QueryHandle {
    fn drop(&mut self) {
        // Redeemed sessions are already gone from the service's maps, so
        // reaping their id is a no-op; only truly abandoned sessions are
        // affected.
        self.abandoned.push(self.id.0);
    }
}

/// Worker-side logic: decode the task, optimize the assigned partition
/// range, reply once per task.
///
/// MPQ tasks are stateless by design (the paper's deployment argument),
/// so the worker holds no per-**session** state: each message is a
/// complete unit of work, and the session-tagged reply is routed by the
/// runtime. What a worker *may* hold is a **shard-local cross-query
/// cache** of finished partition results, keyed by the canonical query
/// signature — pure acceleration state that is never required for
/// correctness, costs no network traffic, and is simply lost with the
/// worker on a crash (a replacement starts cold and recomputes).
pub(crate) struct MpqWorker {
    cache: PlanCache,
    /// Compute slowdown factor (1 = full speed); see
    /// [`MpqConfig::slow_worker`](crate::MpqConfig).
    slow_factor: u32,
    /// Intra-worker thread budget for the DP kernel; see
    /// [`MpqConfig::parallel`](crate::MpqConfig).
    parallel: ParallelPolicy,
}

impl MpqWorker {
    pub(crate) fn new(cache_bytes: usize, slow_factor: u32, parallel: ParallelPolicy) -> MpqWorker {
        MpqWorker {
            cache: PlanCache::new(cache_bytes),
            slow_factor: slow_factor.max(1),
            parallel,
        }
    }
}

/// One boxed MPQ worker node's logic, for callers that host worker nodes
/// behind their own [`Transport`] rather than a [`Cluster`] or socket —
/// the schedule-space model checker dispatches messages to these inline.
/// Equivalent to what [`MpqService::spawn`] installs on each thread, with
/// full compute speed and a single-threaded DP kernel.
pub fn worker_logic(cache_bytes: usize) -> Box<dyn WorkerLogic> {
    Box::new(MpqWorker::new(cache_bytes, 1, ParallelPolicy::serial()))
}

impl WorkerLogic for MpqWorker {
    fn on_message(&mut self, _query: QueryId, payload: Bytes, ctx: &mut WorkerCtx) -> Control {
        let msg = match MasterMessage::from_bytes(&payload) {
            Ok(m) => m,
            // A malformed task means a protocol bug; reply with an
            // impossible range echo so the master fails that session with
            // a typed error instead of hanging. The worker itself stays
            // up — on a resident cluster it is still serving every other
            // session.
            Err(_) => {
                ctx.send_to_master(
                    WorkerMsg::Reply(WorkerReply {
                        first_partition: u64::MAX,
                        partition_count: 0,
                        plans: Vec::new(),
                        stats: WorkerStats::default(),
                        cache_hits: 0,
                        cache_misses: 0,
                    })
                    .to_bytes(),
                );
                return Control::Continue;
            }
        };
        let policy = PruningPolicy::new(msg.objective, msg.query.num_tables());
        let mut plans: Vec<Plan> = Vec::new();
        let mut stats = WorkerStats::default();
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        for (done, part_id) in (msg.first_partition..msg.first_partition + msg.partition_count)
            .enumerate()
            .map(|(i, p)| (i as u64, p))
        {
            let t0 = Instant::now();
            let (out, hit) = optimize_partition_id_cached_parallel(
                &msg.query,
                msg.space,
                msg.objective,
                part_id,
                msg.total_partitions,
                self.parallel,
                &mut self.cache,
            );
            if self.slow_factor > 1 {
                // Degraded-node model: pay (factor - 1) extra copies of
                // the measured compute time per partition.
                std::thread::sleep(t0.elapsed() * (self.slow_factor - 1));
            }
            if self.cache.is_enabled() {
                if hit {
                    cache_hits += 1;
                    ctx.metrics()
                        .record_cache_hit(out.plans.weight_bytes() as u64);
                } else {
                    cache_misses += 1;
                    ctx.metrics().record_cache_miss();
                }
            }
            plans.extend(out.plans);
            // Times and work add up over sequential partitions; memory is
            // the peak, i.e. the max over partitions.
            stats.splits_tried += out.stats.splits_tried;
            stats.plans_generated += out.stats.plans_generated;
            stats.optimize_micros += out.stats.optimize_micros;
            stats.stored_sets = stats.stored_sets.max(out.stats.stored_sets);
            stats.total_entries = stats.total_entries.max(out.stats.total_entries);
            stats.threads_used = stats.threads_used.max(out.stats.threads_used);
            // Progress piggyback: after every `progress_every` completed
            // partitions, but never for the final one (the reply itself
            // signals completion).
            let completed = done + 1;
            if msg.progress_every > 0
                && completed < msg.partition_count
                && completed % msg.progress_every == 0
            {
                ctx.send_to_master(
                    WorkerMsg::Progress(mpq_cluster::Progress {
                        first_partition: msg.first_partition,
                        completed,
                        partition_count: msg.partition_count,
                    })
                    .to_bytes(),
                );
            }
        }
        // Worker-local prune across its partitions: completed plans, so
        // orders no longer matter.
        policy.final_prune(&mut plans);
        ctx.send_to_master(
            WorkerMsg::Reply(WorkerReply {
                first_partition: msg.first_partition,
                partition_count: msg.partition_count,
                plans,
                stats,
                cache_hits,
                cache_misses,
            })
            .to_bytes(),
        );
        Control::Continue
    }
}

/// One steal's paper trail: the range exactly as the superseded task was
/// issued (`first`/`count` are what its assignee will echo), and the
/// assignment entries now covering it — the shrunk kept piece plus the
/// stolen sub-ranges. The straggler's eventual full-range reply is
/// reconciled against this record instead of failing as a protocol error.
struct SplitRecord {
    first: u64,
    count: u64,
    members: Vec<usize>,
}

/// Master-side state of one in-flight optimization session.
struct Session {
    query: Query,
    space: PlanSpace,
    objective: Objective,
    partitions: u64,
    assignment: Vec<(u64, u64)>,
    range_done: Vec<bool>,
    /// Latest worker each range was issued to, and whether it was ever
    /// re-issued (i.e. an earlier assignee might still deliver it).
    range_worker: Vec<usize>,
    range_reissued: Vec<bool>,
    /// Cumulative send-sequence number at the range's latest assignee
    /// when its task went out: by per-worker FIFO, once that worker's
    /// reply count reaches this mark, an outstanding range's reply is
    /// provably lost, not queued.
    range_mark: Vec<u64>,
    /// Partitions of each range reported completed by its assignee
    /// (progress piggyback; stays 0 with stealing disabled).
    range_progress: Vec<u64>,
    /// Ranges split by steals, kept for reply reconciliation.
    splits: Vec<SplitRecord>,
    worker_stats: Vec<WorkerStats>,
    plans: Vec<Plan>,
    completed: usize,
    retries_left: u32,
    steals_left: u32,
    strikes: u32,
    retries: u64,
    steals: u64,
    stolen_partitions: u64,
    progress_reports: u64,
    replies_received: u64,
    duplicate_replies: u64,
    retry_task_bytes: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// Progress-report cadence written into this session's task messages.
    progress_every: u64,
    start: Instant,
    /// When this session last saw one of its own replies; the scheduler's
    /// per-session straggler-suspicion clock.
    last_progress: Instant,
}

impl Session {
    fn task(&self, range: usize) -> MasterMessage {
        let (first_partition, partition_count) = self.assignment[range];
        self.task_for(first_partition, partition_count)
    }

    /// Task message for an arbitrary partition range of this session —
    /// the single construction site, so every field travels with every
    /// task (the steal pass issues sub-ranges not yet in the assignment).
    fn task_for(&self, first_partition: u64, partition_count: u64) -> MasterMessage {
        MasterMessage {
            query: self.query.clone(),
            space: self.space,
            objective: self.objective,
            first_partition,
            partition_count,
            total_partitions: self.partitions,
            progress_every: self.progress_every,
        }
    }

    fn outstanding(&self) -> Vec<usize> {
        (0..self.assignment.len())
            .filter(|&i| !self.range_done[i])
            .collect()
    }

    /// Applies one completing reply to the given assignment entries — the
    /// single bookkeeping site shared by the normal reply path (one
    /// entry) and the split-record reconciliation (all members of the
    /// superseded range). Returns whether the session is now complete.
    fn complete_ranges(&mut self, worker: usize, reply: WorkerReply, ranges: &[usize]) -> bool {
        for &m in ranges {
            if !self.range_done[m] {
                self.range_done[m] = true;
                self.completed += 1;
            }
        }
        self.strikes = 0;
        accumulate(&mut self.worker_stats[worker], &reply.stats);
        self.cache_hits += reply.cache_hits;
        self.cache_misses += reply.cache_misses;
        self.plans.extend(reply.plans);
        self.completed == self.assignment.len()
    }

    /// Appends a fresh assignment entry (a stolen sub-range), keeping the
    /// per-range vectors in lockstep, and returns its index.
    fn push_range(&mut self, first: u64, count: u64, worker: usize) -> usize {
        self.assignment.push((first, count));
        self.range_done.push(false);
        self.range_worker.push(worker);
        self.range_reissued.push(false);
        self.range_mark.push(0);
        self.range_progress.push(0);
        self.assignment.len() - 1
    }
}

/// A long-lived MPQ optimizer service over one resident cluster. See the
/// module docs.
pub struct MpqService {
    cluster: Box<dyn Transport>,
    retry: RetryPolicy,
    steal: StealPolicy,
    /// Admission limit (0 = unlimited); see
    /// [`MpqConfig::max_in_flight`](crate::MpqConfig).
    max_in_flight: usize,
    /// This instance's identity, stamped into every handle it mints.
    service: u64,
    next_id: u64,
    /// Ordered maps so scheduler passes visit sessions in submission
    /// order — deterministic across runs, like the rest of the simulator.
    sessions: BTreeMap<u64, Session>,
    done: BTreeMap<u64, Result<MpqOutcome, MpqError>>,
    /// Per-worker loss-detection state: tasks sent to each worker,
    /// replies seen from it (FIFO stream position), replies the recovery
    /// pass proved lost (queue-ledger repair for the steal pass's
    /// idleness signal), and when it last replied at all.
    tasks_sent: Vec<u64>,
    replies_seen: Vec<u64>,
    lost_replies: Vec<u64>,
    last_reply_from: Vec<Instant>,
    /// Session ids whose [`QueryHandle`] was dropped unredeemed; reaped
    /// (state freed) on the next scheduler entry.
    abandoned: AbandonedList,
}

impl MpqService {
    /// Spawns the resident cluster: `workers` worker threads under
    /// `config`'s latency model, fault plan and retry policy, shared by
    /// every subsequently submitted query.
    pub fn spawn(workers: usize, config: MpqConfig) -> Result<MpqService, MpqError> {
        if workers == 0 {
            return Err(MpqError::BadRequest {
                reason: "at least one worker required",
            });
        }
        let cluster = Cluster::spawn_with_faults(workers, config.latency, &config.faults, |w| {
            let slow_factor = match config.slow_worker {
                Some((slow, factor)) if slow == w => factor,
                _ => 1,
            };
            MpqWorker::new(config.cache_bytes, slow_factor, config.parallel)
        })
        .map_err(MpqError::Cluster)?;
        MpqService::with_transport(Box::new(cluster), config)
    }

    /// Builds the service over an already-connected message plane — the
    /// entry point for real socket transports
    /// ([`SocketTransport`](mpq_cluster::SocketTransport)), whose worker
    /// processes run [`serve_socket_worker`]. `config`'s latency model,
    /// fault plan and slow-worker injector are ignored (those simulate a
    /// network; a real transport has one), while its retry and steal
    /// policies govern recovery exactly as on the simulated plane.
    pub fn with_transport(
        transport: Box<dyn Transport>,
        config: MpqConfig,
    ) -> Result<MpqService, MpqError> {
        let workers = transport.num_workers();
        if workers == 0 {
            return Err(MpqError::BadRequest {
                reason: "at least one worker required",
            });
        }
        Ok(MpqService {
            cluster: transport,
            retry: config.retry,
            steal: config.steal,
            max_in_flight: config.max_in_flight,
            service: mpq_cluster::mint_service_instance(),
            next_id: 0,
            sessions: BTreeMap::new(),
            done: BTreeMap::new(),
            tasks_sent: vec![0; workers],
            replies_seen: vec![0; workers],
            lost_replies: vec![0; workers],
            last_reply_from: vec![Instant::now(); workers],
            abandoned: AbandonedList::new(),
        })
    }

    /// Number of resident worker nodes.
    pub fn num_workers(&self) -> usize {
        self.cluster.num_workers()
    }

    /// Sessions submitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.sessions.len()
    }

    /// Finished results parked for handles that have not redeemed them
    /// yet (bounded by the eviction cap; shrinks when abandoned handles
    /// are reaped).
    pub fn parked_results(&self) -> usize {
        self.done.len()
    }

    /// The resident cluster's network counters (cumulative across every
    /// session the service has served).
    pub fn metrics(&self) -> &NetworkMetrics {
        self.cluster.metrics()
    }

    /// Submits `query` for optimization over all resident workers (one
    /// partition per worker, capped by the query's partition limit) and
    /// returns immediately with a handle. Task messages go out before
    /// this returns; collection happens in [`MpqService::poll`] /
    /// [`MpqService::wait`].
    ///
    /// With stealing enabled, each worker instead receives a contiguous
    /// range of up to [`StealPolicy::oversubscribe`] partitions — a
    /// one-partition range has no splittable tail, so without
    /// oversubscription the steal scheduler would be a structural no-op
    /// on this entry point.
    pub fn submit(
        &mut self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
    ) -> Result<QueryHandle, MpqError> {
        let workers = self.cluster.num_workers() as u64;
        let oversubscribe = if self.steal.enabled {
            self.steal.oversubscribe.max(1)
        } else {
            1
        };
        let partitions = effective_workers(
            space,
            query.num_tables(),
            workers.saturating_mul(oversubscribe),
        );
        let ranges = workers.min(partitions);
        // Contiguous equal split: range i gets `base` partitions plus one
        // of the `extra` leftovers.
        let base = partitions / ranges;
        let extra = partitions % ranges;
        let mut first = 0u64;
        let assignment: Vec<(u64, u64)> = (0..ranges)
            .map(|i| {
                let count = base + u64::from(i < extra);
                let range = (first, count);
                first += count;
                range
            })
            .collect();
        self.submit_assigned(query, space, objective, partitions, assignment)
    }

    /// Submits `query` with an explicit `(first_partition, count)` range
    /// per worker — the weighted/oversubscribed entry points build their
    /// assignment and call this.
    pub fn submit_assigned(
        &mut self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
        partitions: u64,
        assignment: Vec<(u64, u64)>,
    ) -> Result<QueryHandle, MpqError> {
        if assignment.is_empty() {
            return Err(MpqError::BadRequest {
                reason: "a session needs at least one partition range",
            });
        }
        if assignment.len() > self.cluster.num_workers() {
            return Err(MpqError::BadRequest {
                reason: "more partition ranges than resident workers",
            });
        }
        self.reap_abandoned();
        // Admission: refuse past the in-flight budget *before* any task
        // message goes out, so a refused submission leaves zero state
        // behind. Reaping first means dropped-but-unreaped handles never
        // count against the caller.
        if self.max_in_flight > 0 && self.sessions.len() >= self.max_in_flight {
            return Err(MpqError::Overloaded {
                in_flight: self.sessions.len(),
                limit: self.max_in_flight,
            });
        }
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let ranges = assignment.len();
        let mut session = Session {
            query: query.clone(),
            space,
            objective,
            partitions,
            assignment,
            range_done: vec![false; ranges],
            range_worker: (0..ranges).collect(),
            range_reissued: vec![false; ranges],
            range_mark: vec![0; ranges],
            range_progress: vec![0; ranges],
            splits: Vec::new(),
            worker_stats: vec![WorkerStats::default(); self.cluster.num_workers()],
            plans: Vec::new(),
            completed: 0,
            retries_left: self.retry.max_retries,
            steals_left: self.steal.max_steals,
            strikes: 0,
            retries: 0,
            steals: 0,
            stolen_partitions: 0,
            progress_reports: 0,
            replies_received: 0,
            duplicate_replies: 0,
            retry_task_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
            progress_every: self.steal.wire_cadence(),
            start: Instant::now(),
            last_progress: Instant::now(),
        };
        // Dispatch: one task message per range, range i preferring worker
        // i. On a resident cluster a worker may already be dead from an
        // earlier session's faults; with recovery enabled such ranges are
        // routed to a live worker at once (not a retry — the range was
        // never issued, so the budget is untouched).
        self.cluster.metrics().record_round();
        for range in 0..ranges {
            let preferred = session.range_worker[range];
            match self
                .cluster
                .send(preferred, id, session.task(range).to_bytes(), true)
            {
                Ok(()) => {
                    self.tasks_sent[preferred] += 1;
                    session.range_mark[range] = self.tasks_sent[preferred];
                }
                Err(err @ ClusterError::WorkerLost { .. }) if self.retry.max_retries > 0 => {
                    let mut routed = false;
                    for target in live_workers(self.cluster.as_ref()) {
                        if target == preferred {
                            continue;
                        }
                        if self
                            .cluster
                            .send(target, id, session.task(range).to_bytes(), true)
                            .is_ok()
                        {
                            self.tasks_sent[target] += 1;
                            session.range_worker[range] = target;
                            session.range_mark[range] = self.tasks_sent[target];
                            routed = true;
                            break;
                        }
                    }
                    if !routed {
                        return Err(MpqError::Cluster(err));
                    }
                }
                Err(err) => return Err(MpqError::Cluster(err)),
            }
        }
        self.sessions.insert(id.0, session);
        Ok(QueryHandle {
            id,
            service: self.service,
            abandoned: self.abandoned.clone(),
        })
    }

    /// Non-blocking check: drains replies that have already arrived,
    /// applies per-session straggler suspicion, and returns the result
    /// once the handle's session has finished. A result is delivered
    /// exactly once; after `Some`, the handle is spent.
    pub fn poll(&mut self, handle: &QueryHandle) -> Option<Result<MpqOutcome, MpqError>> {
        if handle.service != self.service {
            // A handle from another service instance: its raw session id
            // may collide with one of ours, so reject before any lookup.
            return Some(Err(MpqError::UnknownHandle { id: handle.id }));
        }
        self.reap_abandoned();
        loop {
            if self.done.contains_key(&handle.id.0) {
                break;
            }
            match self.cluster.try_recv() {
                Ok((worker, qid, payload)) => self.route(worker, qid, payload),
                Err(ClusterError::Timeout { .. }) => {
                    // Nothing waiting right now: run the suspicion pass;
                    // if no session was due, hand control back.
                    if !self.check_suspicions() {
                        break;
                    }
                }
                Err(err) => {
                    self.fail_all(err);
                    break;
                }
            }
        }
        self.done.remove(&handle.id.0)
    }

    /// Blocks until the handle's session finishes, driving every
    /// in-flight session's collection and recovery in the meantime.
    ///
    /// A handle whose result was already taken via [`MpqService::poll`]
    /// (or that belongs to a different service) yields a typed
    /// [`MpqError::UnknownHandle`], never a panic.
    pub fn wait(&mut self, handle: QueryHandle) -> Result<MpqOutcome, MpqError> {
        if handle.service != self.service {
            // See poll: foreign handles are rejected before any lookup.
            return Err(MpqError::UnknownHandle { id: handle.id });
        }
        self.reap_abandoned();
        loop {
            if let Some(result) = self.done.remove(&handle.id.0) {
                return result;
            }
            if !self.sessions.contains_key(&handle.id.0) {
                return Err(MpqError::UnknownHandle { id: handle.id });
            }
            self.drive_scheduler_once();
        }
    }

    /// Blocking submit: parks via the clock-free evidence loop whenever
    /// the admission limit refuses the query, driving the in-flight
    /// sessions until capacity frees, then submits. Every non-`Overloaded`
    /// outcome (success or typed failure) is returned as-is, so this is
    /// exactly [`MpqService::submit`] plus backpressure parking.
    pub fn submit_wait(
        &mut self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
    ) -> Result<QueryHandle, MpqError> {
        loop {
            match self.submit(query, space, objective) {
                Err(MpqError::Overloaded { .. }) => {
                    // Overloaded implies at least one session in flight
                    // (the limit is >= 1), and every in-flight session
                    // finishes or fails under the same evidence passes
                    // that drive `wait` — so capacity frees eventually.
                    self.drive_scheduler_once();
                }
                other => return other,
            }
        }
    }

    /// One pass of the blocking scheduler: receive/route with the
    /// configured timeout, or — with no timer — drain the queue first and
    /// fall back to the clock-free evidence pass.
    fn drive_scheduler_once(&mut self) {
        match self.retry.timeout {
            Some(t) => {
                match self.cluster.recv_timeout(t) {
                    Ok((worker, qid, payload)) => self.route(worker, qid, payload),
                    Err(ClusterError::Timeout { .. }) => {}
                    Err(err) => self.fail_all(err),
                }
                self.check_suspicions();
            }
            None => {
                // No timer: drain everything already queued before
                // consulting evidence — a reply sitting in the
                // channel beats any suspicion about its sender (a
                // worker may legitimately crash *after* its
                // completing reply). Only on an empty queue does the
                // clock-free evidence pass run; without it, a worker
                // that crashed before replying would deadlock this
                // wait even though its death is already provable.
                // The park itself is a coarse heartbeat, not an
                // unbounded block: a worker dying *while* the master
                // is parked is noticed by the next evidence pass
                // within one heartbeat.
                match self.cluster.try_recv() {
                    Ok((worker, qid, payload)) => self.route(worker, qid, payload),
                    Err(ClusterError::Timeout { .. }) => {
                        if !self.check_suspicions() {
                            match self.cluster.recv_timeout(EVIDENCE_HEARTBEAT) {
                                Ok((worker, qid, payload)) => self.route(worker, qid, payload),
                                Err(ClusterError::Timeout { .. }) => {}
                                Err(err) => self.fail_all(err),
                            }
                        }
                    }
                    Err(err) => self.fail_all(err),
                }
            }
        }
    }

    /// Shuts the resident cluster down, joining every worker thread.
    /// In-flight sessions are abandoned (their handles become useless), so
    /// drain the service before calling this.
    pub fn shutdown(mut self) {
        self.cluster.shutdown();
    }

    /// Frees the state of sessions whose handle was dropped unredeemed:
    /// in-flight master-side session state and parked results. Late
    /// replies for a reaped session are discarded as duplicates by the
    /// reply router's unknown-session path. Called on every scheduler
    /// entry; public so long-idle callers can reap eagerly.
    pub fn reap_abandoned(&mut self) {
        // Canonical (ascending-id) order: push order depends on when each
        // handle happened to be dropped, and the reaping order must be
        // replayable under the schedule-space model checker.
        for id in self.abandoned.drain_ordered() {
            self.sessions.remove(&id);
            self.done.remove(&id);
        }
    }

    /// Routes one session-tagged worker message to its owning session and
    /// advances that session's state machine.
    fn route(&mut self, worker: usize, qid: QueryId, payload: Bytes) {
        // The worker is alive and talking, whatever it sent.
        self.last_reply_from[worker] = Instant::now();
        enum Advance {
            Pending,
            Finished,
            Failed(MpqError),
        }
        // Peek the one-byte WorkerMsg tag instead of decoding: messages
        // for already-finished sessions (late duplicates, late progress)
        // must not pay a full plan-vector deserialization just to pick a
        // counter.
        let is_progress = payload.first() == Some(&WorkerMsg::TAG_PROGRESS);
        if !is_progress {
            // Loss-detection evidence, advanced for every *reply* no
            // matter which session owns it: the worker's FIFO stream
            // position. Progress reports are excluded — a range's own
            // progress must never read as a FIFO overtake of its reply.
            self.replies_seen[worker] += 1;
        }
        let advance = {
            let Some(session) = self.sessions.get_mut(&qid.0) else {
                // A message for a session that already finished, landing
                // late. A reply is a speculative duplicate; a progress
                // report is just a progress report — neither may distort
                // the other's counter.
                if is_progress {
                    self.cluster.metrics().record_progress_report();
                } else {
                    self.cluster.metrics().record_duplicate();
                }
                return;
            };
            match WorkerMsg::from_bytes(&payload) {
                Err(source) => {
                    session.last_progress = Instant::now();
                    session.replies_received += 1;
                    Advance::Failed(MpqError::Decode { worker, source })
                }
                Ok(WorkerMsg::Progress(p)) => {
                    // Deliberately NOT refreshing session.last_progress:
                    // that clock gates the timer-based recovery pass, and
                    // a chatty straggler must not starve re-execution of a
                    // *different* crashed or reply-lost range of the same
                    // session. The straggler itself stays protected from
                    // spurious speculation through last_reply_from (its
                    // reports prove the worker is alive, so the
                    // reply-silent evidence cannot fire on it).
                    session.progress_reports += 1;
                    self.cluster.metrics().record_progress_report();
                    // Attribute to whichever entry currently starts at the
                    // echoed first partition: a steal shrinks the entry in
                    // place, so the straggler's reports for the original
                    // range keep landing on its kept piece (clamped).
                    if let Some(idx) = session
                        .assignment
                        .iter()
                        .position(|&(f, _)| f == p.first_partition)
                    {
                        let cap = session.assignment[idx].1;
                        session.range_progress[idx] =
                            session.range_progress[idx].max(p.completed.min(cap));
                    }
                    Advance::Pending
                }
                Ok(WorkerMsg::Reply(reply)) => {
                    session.last_progress = Instant::now();
                    session.replies_received += 1;
                    let found = session.assignment.iter().position(|&(f, c)| {
                        f == reply.first_partition && c == reply.partition_count
                    });
                    match found {
                        None => {
                            // No live entry carries this exact range: either
                            // a steal superseded it (reconcile against the
                            // split record) or it is a protocol bug.
                            let split = session.splits.iter().position(|s| {
                                s.first == reply.first_partition && s.count == reply.partition_count
                            });
                            match split {
                                None => Advance::Failed(MpqError::Protocol { worker }),
                                Some(s) => {
                                    let members = session.splits[s].members.clone();
                                    if members.iter().any(|&m| !session.range_done[m]) {
                                        // The straggler outran some thief:
                                        // its full-range plans cover every
                                        // member, so complete them all at
                                        // once. Overlap with members a
                                        // thief already delivered cannot
                                        // change cost bits or frontiers —
                                        // FinalPrune is a pure min/frontier
                                        // over the pool.
                                        if session.complete_ranges(worker, reply, &members) {
                                            Advance::Finished
                                        } else {
                                            Advance::Pending
                                        }
                                    } else {
                                        // Every member already delivered:
                                        // the straggler's work was fully
                                        // duplicated by the thieves.
                                        session.duplicate_replies += 1;
                                        self.cluster.metrics().record_duplicate();
                                        Advance::Pending
                                    }
                                }
                            }
                        }
                        Some(idx) if session.range_done[idx] => {
                            // A speculative duplicate: the range was
                            // already completed by another worker. Count
                            // the wasted work, discard the (identical)
                            // plans.
                            session.duplicate_replies += 1;
                            self.cluster.metrics().record_duplicate();
                            Advance::Pending
                        }
                        Some(idx) => {
                            if session.complete_ranges(worker, reply, &[idx]) {
                                Advance::Finished
                            } else {
                                Advance::Pending
                            }
                        }
                    }
                }
            }
        };
        match advance {
            Advance::Pending => {}
            Advance::Finished => self.finish(qid),
            Advance::Failed(err) => self.fail(qid, err),
        }
        // New progress or a freed worker may unlock a steal; the pass is
        // gated to a cheap no-op when stealing is off. A progress report
        // only changes its own session's picture, so only that session is
        // re-evaluated; a reply may have freed a worker for anyone.
        self.check_steals(is_progress.then_some(qid));
    }

    /// Per-session straggler suspicion: run the recovery pass for every
    /// session that has gone a full retry timeout without one of its own
    /// replies — re-issue its most suspect range (dead assignee first),
    /// or fail it once its budgets are spent. The clock is per session,
    /// so a busy reply stream from other sessions can never starve a
    /// stuck session's recovery. With no timeout configured the pass
    /// degrades gracefully to **hard evidence only**: a dead assignee or
    /// a FIFO overtake proves a range will never complete on its own, no
    /// clock needed — timer-based (reply-silent) suspicion is simply
    /// skipped. Returns whether any session fired.
    fn check_suspicions(&mut self) -> bool {
        let due: Vec<u64> = match self.retry.timeout {
            Some(t) => self
                .sessions
                .iter()
                .filter(|(_, s)| s.last_progress.elapsed() >= t)
                .map(|(&id, _)| id)
                .collect(),
            // Allocation-free scan: this filter runs on every empty
            // `try_recv` of the default no-timer configuration, so it
            // must not materialize per-session Vecs.
            None => self
                .sessions
                .iter()
                .filter(|(_, s)| {
                    (0..s.assignment.len()).any(|i| {
                        !s.range_done[i]
                            && (!self.cluster.is_worker_alive(s.range_worker[i])
                                || self.replies_seen[s.range_worker[i]] >= s.range_mark[i])
                    })
                })
                .map(|(&id, _)| id)
                .collect(),
        };
        for &raw in &due {
            if let Some(session) = self.sessions.get_mut(&raw) {
                session.last_progress = Instant::now();
            }
            // One suspicion event per session, mirrored in the metrics so
            // the retries <= timeouts ledger stays balanced.
            self.cluster.metrics().record_timeout();
            self.session_timeout(QueryId(raw));
        }
        !due.is_empty()
    }

    fn session_timeout(&mut self, qid: QueryId) {
        let Some(session) = self.sessions.get_mut(&qid.0) else {
            return;
        };
        let cluster = &self.cluster;
        let outstanding = session.outstanding();
        debug_assert!(!outstanding.is_empty(), "finished sessions are removed");
        // Evidence that an outstanding range will never complete on its
        // own. On a resident cluster, "no reply for a while" is NOT such
        // evidence — the range may simply be queued behind other
        // sessions' tasks — so speculation fires only on one of:
        //  * a dead assignee (liveness probe);
        //  * a FIFO overtake: the assignee has already replied to a task
        //    issued *after* this range's, so per-worker FIFO proves this
        //    range's reply was lost on the wire, not queued;
        //  * a reply-silent assignee: nothing from that worker for a full
        //    suspicion window (a straggler, or a loss with no later
        //    traffic to prove it by overtake). Skipped entirely when no
        //    timeout is configured — suspicion then rests on the two
        //    clock-free kinds of evidence above.
        let dead = outstanding
            .iter()
            .copied()
            .find(|&i| !cluster.is_worker_alive(session.range_worker[i]));
        let overtaken = outstanding
            .iter()
            .copied()
            .find(|&i| self.replies_seen[session.range_worker[i]] >= session.range_mark[i]);
        let silent = self.retry.timeout.and_then(|t| {
            outstanding
                .iter()
                .copied()
                .find(|&i| self.last_reply_from[session.range_worker[i]].elapsed() >= t)
        });
        let suspect = dead.or(overtaken).or(silent);
        if session.retries_left == 0 {
            // A dead assignee whose range was never re-issued is hopeless
            // — no earlier speculative assignee exists to deliver it — so
            // fail at once. A re-issued range's *earlier* assignee may
            // still be straggling toward a reply, so spend the strike
            // budget waiting before giving up.
            if let Some(i) = dead {
                if !session.range_reissued[i] {
                    let worker = session.range_worker[i];
                    self.fail(qid, MpqError::WorkerLost { worker });
                    return;
                }
            }
            if suspect.is_none() {
                // No evidence of loss: the cluster is just busy.
                return;
            }
            session.strikes += 1;
            if session.strikes >= self.retry.max_strikes {
                let err = match dead {
                    Some(i) => MpqError::WorkerLost {
                        worker: session.range_worker[i],
                    },
                    None => MpqError::RetriesExhausted {
                        outstanding: outstanding.len(),
                    },
                };
                self.fail(qid, err);
            }
            return;
        }
        // Speculative re-execution: re-issue the most suspect range (dead
        // assignee, then FIFO-overtaken, then reply-silent) to a
        // surviving worker, idle workers first. With no evidence at all,
        // the session is merely queued — leave it alone.
        let Some(victim) = suspect else {
            return;
        };
        let old_assignee = session.range_worker[victim];
        let busy: Vec<usize> = outstanding
            .iter()
            .map(|&i| session.range_worker[i])
            .collect();
        let mut candidates = live_workers(cluster.as_ref());
        candidates.sort_by_key(|&w| (busy.contains(&w), w));
        let mut reissued = false;
        for target in candidates {
            let bytes = session.task(victim).to_bytes();
            let len = bytes.len() as u64;
            if cluster.send(target, qid, bytes, true).is_ok() {
                cluster.metrics().record_retry(target);
                self.tasks_sent[target] += 1;
                session.range_mark[victim] = self.tasks_sent[target];
                session.retry_task_bytes += len;
                session.retries += 1;
                session.range_worker[victim] = target;
                session.range_reissued[victim] = true;
                session.retries_left -= 1;
                reissued = true;
                break;
            }
        }
        if !reissued {
            self.fail(qid, MpqError::Cluster(ClusterError::AllWorkersLost));
            return;
        }
        if self.cluster.is_worker_alive(old_assignee) {
            // The evidence says the old assignee's reply for this range
            // was lost (or is hopelessly late): repair its queue ledger,
            // or one dropped reply would under-count the worker as busy
            // forever and silently shrink the steal pass's thief pool.
            // Should the reply straggle in after all, the ledger
            // over-credits the worker by one — it may then be picked as
            // a thief one in-flight task early, a wasted-but-exact steal
            // at worst.
            self.lost_replies[old_assignee] += 1;
        }
    }

    /// Straggler-adaptive redistribution pass. For every steal-enabled
    /// session: compare the **relative** progress of its ranges (complete
    /// ranges count as fraction 1), and when one range provably lags the
    /// session's best by [`StealPolicy::lag_ratio`] with at least
    /// [`StealPolicy::min_steal`] unstarted partitions, split the
    /// unstarted tail into contiguous sub-ranges and re-issue them to
    /// **idle** live workers — never onto workers holding outstanding
    /// work, so stealing cannot slow productive ranges. Exactness is
    /// inherited from the range-echo duplicate suppression: the
    /// straggler's eventual full-range reply reconciles against the
    /// session's [`SplitRecord`]s.
    /// `only` restricts the pass to one session (used for progress
    /// reports, which cannot change any other session's steal picture).
    fn check_steals(&mut self, only: Option<QueryId>) {
        if !self.steal.enabled {
            return;
        }
        let ids: Vec<u64> = match only {
            Some(qid) => vec![qid.0],
            None => self.sessions.keys().copied().collect(),
        };
        // Computed once per pass and refreshed only when a steal actually
        // dispatched tasks — the only thing that changes the answer
        // mid-pass.
        let mut idle = self.idle_workers();
        for raw in ids {
            if idle.is_empty() {
                return;
            }
            if self.steal_for_session(QueryId(raw), &idle) {
                idle = self.idle_workers();
            }
        }
    }

    /// Live workers with a fully drained task queue — the thief pool.
    /// Idleness is queue depth, not assignment bookkeeping: a straggler
    /// that was just stolen from holds no outstanding *entry* but still
    /// has an undrained task in its inbox, and must stay off the thief
    /// list across all sessions. `lost_replies` credits replies the
    /// recovery pass proved lost, so one dropped reply cannot poison a
    /// worker's ledger for the service's lifetime.
    fn idle_workers(&self) -> Vec<usize> {
        live_workers(self.cluster.as_ref())
            .into_iter()
            .filter(|&w| self.replies_seen[w] + self.lost_replies[w] >= self.tasks_sent[w])
            .collect()
    }

    /// One session's steal decision; returns whether a steal dispatched
    /// tasks. See [`MpqService::check_steals`].
    fn steal_for_session(&mut self, qid: QueryId, idle: &[usize]) -> bool {
        let policy = self.steal;
        let Some(session) = self.sessions.get_mut(&qid.0) else {
            return false;
        };
        if session.steals_left == 0 {
            return false;
        }
        let outstanding = session.outstanding();
        fn fraction(s: &Session, i: usize) -> f64 {
            if s.range_done[i] {
                return 1.0;
            }
            let (_, count) = s.assignment[i];
            if count == 0 {
                1.0
            } else {
                s.range_progress[i] as f64 / count as f64
            }
        }
        let best = (0..session.assignment.len())
            .map(|i| fraction(session, i))
            .fold(0.0f64, f64::max);
        if best <= 0.0 {
            // No range has made observable progress yet: no relative
            // signal to act on.
            return false;
        }
        // Victim: among provably lagging ranges with a splittable
        // unstarted tail, the one with the most work left.
        let unstarted_of = |s: &Session, i: usize| -> u64 {
            let (_, count) = s.assignment[i];
            // The partition after the last reported one is presumed in
            // flight at the straggler; only the strictly unstarted tail
            // is up for grabs.
            count.saturating_sub(s.range_progress[i] + 1)
        };
        let victim = outstanding
            .iter()
            .copied()
            .filter(|&i| {
                // A zero min_steal (possible: the fields are public)
                // must still never select an empty tail — there would be
                // nothing to split.
                unstarted_of(session, i) >= policy.min_steal.max(1)
                    && fraction(session, i) * policy.lag_ratio < best
            })
            .max_by_key(|&i| unstarted_of(session, i));
        let Some(victim) = victim else {
            return false;
        };
        let (first, count) = session.assignment[victim];
        let unstarted = unstarted_of(session, victim);
        // Chunk the unstarted tail [first + count - unstarted, first + count)
        // across the idle workers, taking chunks from the END so that
        // anything that fails to send stays contiguous with the kept
        // piece.
        let pieces = (idle.len() as u64).min(unstarted);
        let base = unstarted / pieces;
        let extra = unstarted % pieces;
        let mut stolen_from = first + count;
        let mut members = vec![victim];
        let mut targets = idle.iter().copied();
        for p in 0..pieces {
            // Later chunks (from the tail) get the remainder partitions.
            let chunk = base + u64::from(p < extra);
            let chunk_first = stolen_from - chunk;
            let msg = session.task_for(chunk_first, chunk);
            let mut sent_to = None;
            for target in targets.by_ref() {
                if self.cluster.send(target, qid, msg.to_bytes(), true).is_ok() {
                    sent_to = Some(target);
                    break;
                }
            }
            let Some(target) = sent_to else {
                // No idle worker accepted the chunk (all died since the
                // liveness check): stop here — the un-stolen head stays
                // with the straggler.
                break;
            };
            self.tasks_sent[target] += 1;
            let idx = session.push_range(chunk_first, chunk, target);
            session.range_mark[idx] = self.tasks_sent[target];
            members.push(idx);
            stolen_from = chunk_first;
        }
        if stolen_from == first + count {
            return false; // nothing was actually stolen
        }
        // Shrink the straggler's entry to the un-stolen head and file the
        // split record under the range exactly as its task was issued, so
        // the eventual full-range reply reconciles instead of erroring.
        let keep = stolen_from - first;
        session.assignment[victim] = (first, keep);
        session.range_progress[victim] = session.range_progress[victim].min(keep);
        session.splits.push(SplitRecord {
            first,
            count,
            members: members.clone(),
        });
        session.steals_left -= 1;
        session.steals += 1;
        session.stolen_partitions += count - keep;
        self.cluster.metrics().record_steal();
        // The straggler cannot be preempted mid-task, so its kept head
        // would otherwise be delivered only by its eventual full-range
        // reply — leaving the session gated on the slow node after all.
        // Decouple completely: re-issue the head speculatively, to a
        // remaining idle worker if one is left, else queued behind a
        // thief (a thief's chunk plus the head still beats a straggler
        // computing the head alone). Whichever reply lands first wins;
        // the other is duplicate-suppressed.
        // The victim's entry was just shrunk to the kept head, so its
        // regular task IS the backup message.
        let head = session.task(victim);
        let thieves: Vec<usize> = members[1..]
            .iter()
            .map(|&m| session.range_worker[m])
            .collect();
        let backup = targets.chain(thieves).find(|&target| {
            self.cluster
                .send(target, qid, head.to_bytes(), true)
                .is_ok()
        });
        if let Some(target) = backup {
            self.tasks_sent[target] += 1;
            session.range_worker[victim] = target;
            session.range_mark[victim] = self.tasks_sent[target];
            session.range_reissued[victim] = true;
        }
        // With no live worker to back the head up, the straggler's own
        // reply remains its carrier — slow, but still exact.
        true
    }

    /// Completes a session: FinalPrune over the O(m) collected plans,
    /// metrics assembly, result parked for the handle.
    fn finish(&mut self, qid: QueryId) {
        let Some(session) = self.sessions.remove(&qid.0) else {
            // Internal invariant (route only finishes live sessions), but
            // a resident master must not abort if it is ever violated.
            return;
        };
        let mut plans = session.plans;
        let policy = PruningPolicy::new(session.objective, session.query.num_tables());
        policy.final_prune(&mut plans);
        let network = self.cluster.metrics().snapshot();
        let metrics = MpqMetrics {
            total_micros: session.start.elapsed().as_micros() as u64,
            max_worker_micros: session
                .worker_stats
                .iter()
                .map(|s| s.optimize_micros)
                .max()
                .unwrap_or(0),
            max_worker_stored_sets: session
                .worker_stats
                .iter()
                .map(|s| s.stored_sets)
                .max()
                .unwrap_or(0),
            network,
            worker_stats: session.worker_stats,
            partitions: session.partitions,
            workers_used: session.assignment.len(),
            retries: session.retries,
            duplicate_replies: session.duplicate_replies,
            replies_received: session.replies_received,
            retry_task_bytes: session.retry_task_bytes,
            cache_hits: session.cache_hits,
            cache_misses: session.cache_misses,
            steals: session.steals,
            stolen_partitions: session.stolen_partitions,
            progress_reports: session.progress_reports,
        };
        self.park_result(qid, Ok(MpqOutcome { plans, metrics }));
    }

    fn fail(&mut self, qid: QueryId, err: MpqError) {
        self.sessions.remove(&qid.0);
        self.park_result(qid, Err(err));
    }

    /// Parks a finished session's result for its handle, evicting the
    /// oldest unredeemed result beyond [`MAX_PARKED_RESULTS`] (abandoned
    /// handles must not leak memory on a long-lived service).
    fn park_result(&mut self, qid: QueryId, result: Result<MpqOutcome, MpqError>) {
        self.done.insert(qid.0, result);
        while self.done.len() > MAX_PARKED_RESULTS {
            self.done.pop_first();
        }
    }

    /// The substrate itself is gone: every in-flight session fails.
    fn fail_all(&mut self, err: ClusterError) {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        for raw in ids {
            self.fail(QueryId(raw), MpqError::Cluster(err.clone()));
        }
    }
}

fn live_workers(cluster: &dyn Transport) -> Vec<usize> {
    (0..cluster.num_workers())
        .filter(|&w| cluster.is_worker_alive(w))
        .collect()
}

/// Runs one MPQ worker **process**: accepts a single master connection on
/// `listener` and serves the MPQ worker protocol over it until the master
/// disconnects or orders shutdown. The logic is the same `MpqWorker`
/// the in-process cluster drives (with an own-rate clock, i.e. no
/// slow-worker injection — real deployments get real stragglers), so a
/// socket master observes byte-identical protocol behavior.
pub fn serve_socket_worker(
    listener: &WireListener,
    cache_bytes: usize,
    parallel: ParallelPolicy,
) -> std::io::Result<()> {
    mpq_cluster::serve_worker(listener, MpqWorker::new(cache_bytes, 1, parallel))
}

/// Accumulates a reply's counters into a worker's running stats (a worker
/// may execute several ranges under retries).
fn accumulate(into: &mut WorkerStats, s: &WorkerStats) {
    into.splits_tried += s.splits_tried;
    into.plans_generated += s.plans_generated;
    into.optimize_micros += s.optimize_micros;
    into.stored_sets = into.stored_sets.max(s.stored_sets);
    into.total_entries = into.total_entries.max(s.total_entries);
    into.threads_used = into.threads_used.max(s.threads_used);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::optimizer::MpqOptimizer;
    use mpq_dp::optimize_serial;
    use mpq_model::{WorkloadConfig, WorkloadGenerator};

    fn query(n: usize, seed: u64) -> Query {
        WorkloadGenerator::new(WorkloadConfig::paper_default(n), seed).next_query()
    }

    fn rel_eq(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * b.abs().max(1.0)
    }

    #[test]
    fn many_concurrent_sessions_on_one_cluster() {
        let mut svc = MpqService::spawn(4, MpqConfig::default()).unwrap();
        let queries: Vec<Query> = (0..12).map(|s| query(5 + (s as usize % 3), s)).collect();
        let handles: Vec<QueryHandle> = queries
            .iter()
            .map(|q| {
                svc.submit(q, PlanSpace::Linear, Objective::Single)
                    .expect("submit")
            })
            .collect();
        assert_eq!(svc.in_flight(), 12);
        // Wait in reverse submission order: routing, not luck, must match
        // each result to its query.
        for (q, handle) in queries.iter().zip(handles).rev() {
            let out = svc.wait(handle).expect("session completes");
            let reference = optimize_serial(q, PlanSpace::Linear, Objective::Single).plans[0]
                .cost()
                .time;
            assert!(rel_eq(out.plans[0].cost().time, reference));
        }
        assert_eq!(svc.in_flight(), 0);
        svc.shutdown();
    }

    #[test]
    fn poll_is_nonblocking_and_delivers_once() {
        let mut svc = MpqService::spawn(2, MpqConfig::default()).unwrap();
        let q = query(6, 1);
        let handle = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        let mut out = None;
        for _ in 0..10_000 {
            if let Some(r) = svc.poll(&handle) {
                out = Some(r.expect("session completes"));
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        let out = out.expect("poll eventually completes");
        let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
            .cost()
            .time;
        assert!(rel_eq(out.plans[0].cost().time, reference));
        // The result was delivered; the handle is spent.
        assert!(svc.poll(&handle).is_none());
        svc.shutdown();
    }

    #[test]
    fn sessions_have_independent_metrics() {
        let mut svc = MpqService::spawn(4, MpqConfig::default()).unwrap();
        let q = query(6, 2);
        let a = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        let b = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        let out_a = svc.wait(a).unwrap();
        let out_b = svc.wait(b).unwrap();
        // Per-session ledgers balance independently even though the
        // cluster-wide byte counters are shared.
        for out in [&out_a, &out_b] {
            assert_eq!(out.metrics.workers_used, 4);
            assert_eq!(
                out.metrics.replies_received,
                out.metrics.workers_used as u64 + out.metrics.duplicate_replies
            );
            assert_eq!(out.metrics.retries, 0);
        }
        svc.shutdown();
    }

    #[test]
    fn stuck_session_recovers_while_other_sessions_keep_the_stream_busy() {
        use mpq_cluster::{FaultAction, FaultPlan};
        use std::time::Duration;
        // Worker 1's very first reply (half of session A) is dropped; a
        // continuous stream of filler sessions then keeps replies flowing.
        // Suspicion is per session with FIFO loss-detection, so A's lost
        // range must be re-issued and completed *while* the stream is
        // busy — a global "time since any reply" clock would never fire,
        // starving A for as long as the stream lasts.
        let faults = FaultPlan {
            drop_prob: 0.02,
            ..FaultPlan::NONE
        }
        .with_seed_where(2, 4096, |s| s.action(1, 0) == FaultAction::DropReply)
        .expect("some seed drops worker 1's first reply");
        let config = MpqConfig {
            faults,
            retry: RetryPolicy::with_timeout(256, Duration::from_millis(10)),
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(2, config).unwrap();
        let q = query(8, 42);
        let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
            .cost()
            .time;
        let stuck = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        // Feed fillers one at a time, pacing each by ~2 ms of wall clock
        // while polling A, so the reply stream stays busy for far longer
        // than A's suspicion window.
        const FILLER_CAP: u64 = 200;
        let mut fillers: Vec<QueryHandle> = Vec::new();
        let mut stuck_result = None;
        let mut fillers_at_recovery = None;
        'stream: for seed in 0..FILLER_CAP {
            let fq = query(6, 1000 + seed);
            fillers.push(
                svc.submit(&fq, PlanSpace::Linear, Objective::Single)
                    .unwrap(),
            );
            for _ in 0..10 {
                if let Some(result) = svc.poll(&stuck) {
                    stuck_result = Some(result);
                    fillers_at_recovery = Some(seed + 1);
                    break 'stream;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let fillers_at_recovery = fillers_at_recovery
            .expect("the stuck session must recover during the busy stream, not after it drains");
        assert!(
            fillers_at_recovery < FILLER_CAP / 2,
            "recovery should come within the first half of the stream, \
             got {fillers_at_recovery}"
        );
        let out = stuck_result
            .unwrap()
            .expect("the dropped range is re-issued");
        assert!(rel_eq(out.plans[0].cost().time, reference));
        assert!(out.metrics.retries >= 1, "recovery must have fired");
        for handle in fillers {
            let out = svc.wait(handle).expect("fillers complete");
            assert_eq!(out.plans.len(), 1);
        }
        svc.shutdown();
    }

    #[test]
    fn warm_shard_caches_serve_repeated_queries_identically() {
        let config = MpqConfig {
            cache_bytes: 1 << 20,
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(4, config).unwrap();
        let q = query(7, 21);
        let cold = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .and_then(|h| svc.wait(h))
            .expect("cold run");
        assert_eq!(cold.metrics.cache_hits, 0);
        assert_eq!(cold.metrics.cache_misses, cold.metrics.partitions);
        let warm = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .and_then(|h| svc.wait(h))
            .expect("warm run");
        assert_eq!(
            warm.metrics.cache_hits, warm.metrics.partitions,
            "every partition repeats on the same worker"
        );
        assert_eq!(warm.plans, cold.plans, "hits are byte-identical");
        let s = svc.metrics().snapshot();
        assert_eq!(s.cache_hits, warm.metrics.cache_hits);
        assert!(s.cache_bytes_saved > 0);
        svc.shutdown();
    }

    #[test]
    fn caching_disabled_reports_no_cache_traffic() {
        let mut svc = MpqService::spawn(2, MpqConfig::default()).unwrap();
        let q = query(6, 22);
        for _ in 0..2 {
            let out = svc
                .submit(&q, PlanSpace::Linear, Objective::Single)
                .and_then(|h| svc.wait(h))
                .expect("run");
            assert_eq!(out.metrics.cache_hits, 0);
            assert_eq!(out.metrics.cache_misses, 0);
        }
        assert_eq!(svc.metrics().snapshot().cache_hits, 0);
        svc.shutdown();
    }

    /// Regression (ISSUE 4 satellite): dropping an unredeemed handle must
    /// free the session's master-side state instead of leaking it until
    /// service teardown.
    #[test]
    fn dropped_handles_release_session_state() {
        let mut svc = MpqService::spawn(2, MpqConfig::default()).unwrap();
        let q = query(6, 23);
        let abandoned = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .expect("submit");
        assert_eq!(svc.in_flight(), 1);
        drop(abandoned);
        // The next scheduler entry reaps the abandoned session; a second
        // query must stream through unaffected.
        let handle = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .expect("submit");
        assert_eq!(svc.in_flight(), 1, "the dropped session is gone");
        let out = svc.wait(handle).expect("live session completes");
        assert_eq!(out.plans.len(), 1);
        assert_eq!(svc.in_flight(), 0);
        // A completed-but-unredeemed result is reaped from the parked map
        // too once its handle drops: finish `parked`'s session by waiting
        // on a later driver session, then drop the handle unredeemed.
        let parked = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .expect("submit");
        while svc.parked_results() == 0 {
            // Waiting on driver sessions pumps the shared reply stream, so
            // `parked`'s session completes and its result is parked.
            let driver = svc
                .submit(&q, PlanSpace::Linear, Objective::Single)
                .expect("submit");
            let _ = svc.wait(driver).expect("driver completes");
        }
        drop(parked);
        svc.reap_abandoned();
        assert_eq!(svc.parked_results(), 0, "the parked result is freed");
        svc.shutdown();
    }

    #[test]
    fn resident_service_survives_worker_crashes_across_sessions() {
        use mpq_cluster::FaultPlan;
        use std::time::Duration;
        // One worker crashes on its very first task; every later session
        // must route around the corpse without fresh faults.
        let faults = FaultPlan::crash_on_first_task(4, 3);
        let config = MpqConfig {
            faults,
            retry: RetryPolicy::with_timeout(64, Duration::from_millis(20)),
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(4, config).unwrap();
        for seed in 0..6 {
            let q = query(6, seed);
            let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
                .cost()
                .time;
            let handle = svc
                .submit(&q, PlanSpace::Linear, Objective::Single)
                .expect("dead workers are routed around at submit");
            let out = svc.wait(handle).expect("recovery succeeds");
            assert!(rel_eq(out.plans[0].cost().time, reference), "seed {seed}");
        }
        assert!(svc.metrics().snapshot().crashes >= 1);
        svc.shutdown();
    }

    /// Regression (ISSUE 5 satellite): redeeming a handle twice —
    /// poll-then-wait — must yield a typed error, never a panic.
    #[test]
    fn poll_then_wait_is_a_typed_error() {
        let mut svc = MpqService::spawn(2, MpqConfig::default()).unwrap();
        let q = query(5, 30);
        let handle = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        let mut polled = false;
        for _ in 0..10_000 {
            if svc.poll(&handle).is_some() {
                polled = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        assert!(polled, "the session completes");
        let id = handle.id();
        let err = svc.wait(handle).expect_err("the result was already taken");
        assert_eq!(err, MpqError::UnknownHandle { id });
        svc.shutdown();
    }

    /// Regression (ISSUE 5 satellite): malformed submissions are typed
    /// errors, not asserts.
    #[test]
    fn malformed_submissions_are_typed_errors() {
        let mut svc = MpqService::spawn(2, MpqConfig::default()).unwrap();
        let q = query(5, 31);
        let err = svc
            .submit_assigned(&q, PlanSpace::Linear, Objective::Single, 4, Vec::new())
            .expect_err("empty assignment");
        assert!(matches!(err, MpqError::BadRequest { .. }));
        let err = svc
            .submit_assigned(
                &q,
                PlanSpace::Linear,
                Objective::Single,
                4,
                vec![(0, 1), (1, 1), (2, 1)],
            )
            .expect_err("more ranges than workers");
        assert!(matches!(err, MpqError::BadRequest { .. }));
        assert!(matches!(
            MpqService::spawn(0, MpqConfig::default()),
            Err(MpqError::BadRequest { .. })
        ));
        svc.shutdown();
    }

    /// Regression (ISSUE 5 satellite): a `RetryPolicy` with `timeout:
    /// None` must not panic in the suspicion pass — it degrades to
    /// death/overtake evidence and still recovers a crashed worker's
    /// range through `poll`.
    #[test]
    fn no_timeout_retry_policy_recovers_on_evidence() {
        use mpq_cluster::FaultPlan;
        let config = MpqConfig {
            faults: FaultPlan::crash_on_first_task(2, 1),
            retry: RetryPolicy {
                max_retries: 8,
                timeout: None,
                max_strikes: 64,
            },
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(2, config).unwrap();
        let q = query(6, 32);
        let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
            .cost()
            .time;
        let handle = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        let mut out = None;
        for _ in 0..20_000 {
            if let Some(r) = svc.poll(&handle) {
                out = Some(r.expect("evidence-based recovery succeeds"));
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        let out = out.expect("the session completes without a timer");
        assert!(rel_eq(out.plans[0].cost().time, reference));
        assert!(out.metrics.retries >= 1, "the crash forced a re-issue");
        assert!(svc.metrics().snapshot().crashes >= 1);
        svc.shutdown();
    }

    /// Tentpole: a 10x-slowed worker's unstarted remainder is stolen by
    /// idle workers, the session stays exact, and the steal shows up in
    /// the session and cluster ledgers.
    #[test]
    fn straggling_range_is_split_and_stolen() {
        let opt = MpqOptimizer::new(MpqConfig {
            steal: StealPolicy::balanced(),
            slow_worker: Some((0, 10)),
            ..MpqConfig::default()
        });
        let q = query(9, 33);
        let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
            .cost()
            .time;
        // Oversubscribed: 4 workers x 4 partitions each — the slow worker
        // holds a splittable 16-partition-space range.
        let out = opt
            .try_optimize_oversubscribed(&q, PlanSpace::Linear, Objective::Single, 4, 16)
            .expect("steal-on run completes");
        assert!(rel_eq(out.plans[0].cost().time, reference));
        assert!(
            out.metrics.steals >= 1,
            "the slowed worker must be stolen from: {:?}",
            out.metrics
        );
        assert!(out.metrics.stolen_partitions >= 1);
        assert!(out.metrics.progress_reports >= 1);
        assert_eq!(out.metrics.network.steals, out.metrics.steals);
    }

    /// Regression (review): `wait` with `timeout: None` must not deadlock
    /// on a pre-reply crash — the blocking receive yields to the
    /// clock-free evidence pass first.
    #[test]
    fn no_timeout_wait_recovers_on_evidence() {
        use mpq_cluster::FaultPlan;
        let config = MpqConfig {
            faults: FaultPlan::crash_on_first_task(2, 1),
            retry: RetryPolicy {
                max_retries: 8,
                timeout: None,
                max_strikes: 64,
            },
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(2, config).unwrap();
        let q = query(6, 35);
        let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
            .cost()
            .time;
        // The crashed worker sends nothing; only the evidence pass run
        // before the blocking recv can re-issue its range.
        let out = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .and_then(|h| svc.wait(h))
            .expect("evidence-based recovery unblocks the wait");
        assert!(rel_eq(out.plans[0].cost().time, reference));
        assert!(out.metrics.retries >= 1);
        svc.shutdown();
    }

    /// Regression (review): with no timer configured, `wait` must drain
    /// queued replies before consulting death evidence — a worker that
    /// crashes *after* its completing reply must not fail (or re-issue)
    /// the session its queued reply completes exactly.
    #[test]
    fn queued_reply_beats_dead_sender_evidence_without_timer() {
        use mpq_cluster::{FaultAction, FaultPlan};
        let faults = FaultPlan {
            crash_prob: 1.0,
            crash_after_reply_prob: 1.0,
            min_survivors: 1,
            ..FaultPlan::NONE
        }
        .with_seed_where(2, 4096, |s| {
            // min_survivors always spares the lowest-id candidate, so
            // worker 1 is the one that can crash here.
            s.action(1, 0) == FaultAction::CrashAfterReply && s.crashing_workers() == vec![1]
        })
        .expect("some seed crashes exactly worker 1 right after its first reply");
        let config = MpqConfig {
            faults,
            // The default policy: no retries, no timer — the reply on the
            // wire is the only way this session can complete.
            retry: RetryPolicy::DISABLED,
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(2, config).unwrap();
        let q = query(6, 39);
        let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
            .cost()
            .time;
        let handle = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        // Let worker 1 reply and die before the master looks at anything,
        // so its completing reply is queued behind a provably dead sender.
        for _ in 0..500 {
            if !svc.cluster.is_worker_alive(1) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(!svc.cluster.is_worker_alive(1), "the crash must have fired");
        let out = svc
            .wait(handle)
            .expect("the queued reply completes the session despite the dead sender");
        assert!(rel_eq(out.plans[0].cost().time, reference));
        assert_eq!(out.metrics.retries, 0, "nothing needed re-execution");
        svc.shutdown();
    }

    /// Regression (review): a zero `min_steal` (the fields are public)
    /// must not divide by zero when a candidate range has no unstarted
    /// tail — it is simply never a victim.
    #[test]
    fn zero_min_steal_never_panics() {
        let config = MpqConfig {
            steal: StealPolicy {
                min_steal: 0,
                ..StealPolicy::balanced()
            },
            slow_worker: Some((0, 4)),
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(4, config).unwrap();
        let q = query(6, 36);
        // Explicit one-partition ranges: every tail is empty, so nothing
        // is stealable no matter how lopsided progress looks — selecting
        // such a victim would divide by zero in the chunk math.
        let assignment: Vec<(u64, u64)> = (0..4).map(|p| (p, 1)).collect();
        let out = svc
            .submit_assigned(&q, PlanSpace::Linear, Objective::Single, 4, assignment)
            .and_then(|h| svc.wait(h))
            .expect("session completes without a steal");
        assert_eq!(out.metrics.steals, 0);
        svc.shutdown();
    }

    /// Regression (review): session ids collide across services (every
    /// service counts from 0), so a foreign same-backend handle must be
    /// rejected — never redeem another session's result.
    #[test]
    fn foreign_same_backend_handle_is_rejected() {
        let mut a = MpqService::spawn(2, MpqConfig::default()).unwrap();
        let mut b = MpqService::spawn(2, MpqConfig::default()).unwrap();
        let qa = query(5, 37);
        let qb = query(6, 38);
        let from_a = a.submit(&qa, PlanSpace::Linear, Objective::Single).unwrap();
        let from_b = b.submit(&qb, PlanSpace::Linear, Objective::Single).unwrap();
        assert_eq!(from_a.id(), from_b.id(), "raw ids do collide");
        assert!(matches!(
            b.poll(&from_a),
            Some(Err(MpqError::UnknownHandle { .. }))
        ));
        assert!(matches!(
            b.wait(from_a),
            Err(MpqError::UnknownHandle { .. })
        ));
        // B's rightful handle still redeems B's own result.
        let out = b.wait(from_b).expect("b's own session completes");
        let reference = optimize_serial(&qb, PlanSpace::Linear, Objective::Single).plans[0]
            .cost()
            .time;
        assert!(rel_eq(out.plans[0].cost().time, reference));
        a.shutdown();
        b.shutdown();
    }

    /// Regression (review): a dropped reply must not poison a worker's
    /// queue ledger for the service's lifetime — the recovery pass
    /// credits the proven-lost reply, so the worker returns to the thief
    /// pool and later sessions can still steal onto it.
    #[test]
    fn dropped_reply_does_not_poison_the_thief_pool() {
        use mpq_cluster::{FaultAction, FaultPlan};
        use std::time::Duration;
        // Two workers: worker 0 is slow (the perpetual steal victim), so
        // worker 1 is the only possible thief — and worker 1's entire
        // first task (progress and reply) is eaten by the network.
        let faults = FaultPlan {
            drop_prob: 0.15,
            ..FaultPlan::NONE
        }
        .with_seed_where(2, 8192, |s| {
            (0..8).all(|m| s.action(0, m) == FaultAction::Deliver)
                && s.action(1, 0) == FaultAction::DropReply
                && (1..8).all(|m| s.action(1, m) == FaultAction::Deliver)
        })
        .expect("some seed drops exactly worker 1's first task output");
        // Factor 20 (not 3): the victim must still be visibly mid-range
        // when worker 1 goes idle, or the steal pass has nothing to split
        // and the session races to completion without the steal this test
        // exists to observe — at small factors that race flakes under
        // parallel test load.
        let config = MpqConfig {
            faults,
            steal: StealPolicy::balanced(),
            slow_worker: Some((0, 20)),
            retry: RetryPolicy::with_timeout(64, Duration::from_millis(15)),
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(2, config).unwrap();
        // Session 1: explicit one-partition ranges, so the steal pass has
        // nothing to split and only the retry machinery can recover the
        // dropped reply — repairing worker 1's ledger in the process.
        let q = query(7, 45);
        let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
            .cost()
            .time;
        let first = svc
            .submit_assigned(
                &q,
                PlanSpace::Linear,
                Objective::Single,
                2,
                vec![(0, 1), (1, 1)],
            )
            .and_then(|h| svc.wait(h))
            .expect("drop is recovered");
        assert!(rel_eq(first.plans[0].cost().time, reference));
        assert!(first.metrics.retries >= 1, "the drop forced a re-issue");
        // Session 2: worker 1 must be steal-eligible again despite its
        // permanently unanswered first task.
        let second = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .and_then(|h| svc.wait(h))
            .expect("second session completes");
        assert!(rel_eq(second.plans[0].cost().time, reference));
        assert!(
            second.metrics.steals >= 1,
            "the repaired ledger must readmit the only thief: {:?}",
            second.metrics
        );
        svc.shutdown();
    }

    /// With stealing enabled, the plain `submit` entry point
    /// oversubscribes the partition space so ranges have splittable
    /// tails — otherwise `serve --steal` would be a structural no-op —
    /// and a slowed worker demonstrably produces progress traffic while
    /// results stay exact.
    #[test]
    fn submit_oversubscribes_when_stealing() {
        let config = MpqConfig {
            steal: StealPolicy::balanced(),
            slow_worker: Some((0, 6)),
            ..MpqConfig::default()
        };
        let mut svc = MpqService::spawn(4, config).unwrap();
        let q = query(8, 44);
        let reference = optimize_serial(&q, PlanSpace::Linear, Objective::Single).plans[0]
            .cost()
            .time;
        let out = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .and_then(|h| svc.wait(h))
            .expect("session completes");
        assert!(rel_eq(out.plans[0].cost().time, reference));
        assert!(
            out.metrics.partitions > 4,
            "steal-enabled submit must oversubscribe: {} partitions",
            out.metrics.partitions
        );
        assert!(
            out.metrics.progress_reports >= 1,
            "multi-partition ranges must report progress: {:?}",
            out.metrics
        );
        // Steal-off submit keeps the paper's one-partition-per-worker
        // layout bit-for-bit.
        let mut off = MpqService::spawn(4, MpqConfig::default()).unwrap();
        let base = off
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .and_then(|h| off.wait(h))
            .expect("session completes");
        assert_eq!(base.metrics.partitions, 4);
        assert_eq!(
            base.plans[0].cost().time.to_bits(),
            out.plans[0].cost().time.to_bits(),
            "oversubscription never changes the optimum"
        );
        off.shutdown();
        svc.shutdown();
    }

    /// Steal-off sessions put no progress traffic on the wire and never
    /// steal, even with a slowed worker.
    #[test]
    fn steal_disabled_is_quiet() {
        let opt = MpqOptimizer::new(MpqConfig {
            slow_worker: Some((0, 4)),
            ..MpqConfig::default()
        });
        let q = query(8, 34);
        let out = opt
            .try_optimize_oversubscribed(&q, PlanSpace::Linear, Objective::Single, 2, 8)
            .expect("run completes");
        assert_eq!(out.metrics.steals, 0);
        assert_eq!(out.metrics.progress_reports, 0);
        assert_eq!(out.metrics.network.progress_reports, 0);
        assert_eq!(out.metrics.network.steals, 0);
    }
}
