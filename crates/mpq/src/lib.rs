//! **MPQ** — massively-parallel query optimization on shared-nothing
//! architectures: the algorithm of Trummer & Koch (VLDB 2016).
//!
//! The protocol is Algorithm 1 of the paper, executed over the simulated
//! shared-nothing cluster of `mpq-cluster`:
//!
//! 1. The master sends each worker **one** task message containing the
//!    query (with its statistics), the plan space, the objective, and the
//!    worker's partition-ID range — `O(m · b_q)` bytes in total.
//! 2. Each worker decodes its partition IDs into join-order constraints
//!    (Algorithm 3), runs the per-partition dynamic program of `mpq-dp`
//!    over the admissible join results, and replies with its
//!    partition-optimal plan(s) — `O(m · b_p)` bytes in total.
//! 3. The master compares the `O(m)` returned plans (`FinalPrune`) and
//!    reports the globally optimal plan, or the merged Pareto frontier for
//!    multi-objective optimization.
//!
//! There is exactly **one communication round** and no worker↔worker
//! traffic; the master's work is linear in `m` and the query size.
//!
//! Beyond the paper's pseudo-code, [`MpqOptimizer::optimize_weighted`]
//! supports heterogeneous workers (footnote 1 of the paper): partition
//! counts proportional to per-worker weights, each worker solving a
//! contiguous range of partitions.
//!
//! The master is **fault tolerant**: because a task is stateless (query +
//! partition range) and the protocol has a single round, a crashed,
//! dropped or straggling worker costs exactly one re-issued task. Retries
//! and speculative re-execution are governed by a [`RetryPolicy`]; with
//! retries disabled, worker loss surfaces as a typed [`MpqError`] rather
//! than a panic.
//!
//! The master is also **resident**: [`MpqService`] keeps one long-lived
//! cluster up and multiplexes an unbounded stream of concurrent queries
//! over it (`submit` → [`QueryHandle`], `poll`/`wait`), so thread
//! spawn/teardown is paid once per service, not once per query. The
//! single-query [`MpqOptimizer`] entry points are wrappers over the same
//! scheduler.

#![forbid(unsafe_code)]

pub mod message;
pub mod optimizer;
pub mod service;

pub use message::{MasterMessage, WorkerMsg, WorkerReply};
pub use mpq_dp::ParallelPolicy;
pub use optimizer::{
    MpqConfig, MpqError, MpqMetrics, MpqOptimizer, MpqOutcome, RetryPolicy, StealPolicy,
};
pub use service::{serve_socket_worker, worker_logic, MpqService, QueryHandle};
