//! Compact sets of query tables.
//!
//! The dynamic programming scheme parallelized by the paper enumerates
//! *table sets*: subsets of the query's tables that can appear as
//! intermediate join results. Queries in the paper's evaluation have at most
//! 24 tables, so a single 64-bit word comfortably represents any set; all
//! set operations are branch-free bit arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of query tables, represented as a 64-bit bitset.
///
/// Table `i` (with `0 <= i < 64`) is a member iff bit `i` is set. The
/// numbering is the consecutive numbering `Q_0 .. Q_{n-1}` that Section 4.2
/// of the paper requires all workers to share: partition constraints are
/// expressed against this numbering, so it must be identical on the master
/// and every worker.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct TableSet(pub u64);

impl TableSet {
    /// The empty set.
    pub const EMPTY: TableSet = TableSet(0);

    /// Maximum number of tables representable.
    pub const MAX_TABLES: usize = 64;

    /// Creates the empty table set.
    #[inline]
    pub const fn empty() -> Self {
        TableSet(0)
    }

    /// Creates a singleton set containing only `table`.
    ///
    /// # Panics
    /// Panics if `table >= 64`.
    #[inline]
    pub fn singleton(table: usize) -> Self {
        assert!(table < Self::MAX_TABLES, "table index {table} out of range");
        TableSet(1u64 << table)
    }

    /// Creates the full set `{0, .., n-1}` of the first `n` tables.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= Self::MAX_TABLES, "query size {n} out of range");
        if n == Self::MAX_TABLES {
            TableSet(u64::MAX)
        } else {
            TableSet((1u64 << n) - 1)
        }
    }

    /// Builds a set from an iterator of table indices.
    pub fn from_tables<I: IntoIterator<Item = usize>>(tables: I) -> Self {
        let mut s = TableSet::empty();
        for t in tables {
            s = s.insert(t);
        }
        s
    }

    /// Number of tables in the set.
    #[inline]
    pub const fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Whether `table` is a member.
    #[inline]
    pub const fn contains(&self, table: usize) -> bool {
        (self.0 >> table) & 1 == 1
    }

    /// Returns the set with `table` added.
    #[inline]
    pub fn insert(&self, table: usize) -> Self {
        debug_assert!(table < Self::MAX_TABLES);
        TableSet(self.0 | (1u64 << table))
    }

    /// Returns the set with `table` removed.
    #[inline]
    pub fn remove(&self, table: usize) -> Self {
        debug_assert!(table < Self::MAX_TABLES);
        TableSet(self.0 & !(1u64 << table))
    }

    /// Set union.
    #[inline]
    pub const fn union(&self, other: TableSet) -> Self {
        TableSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersect(&self, other: TableSet) -> Self {
        TableSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(&self, other: TableSet) -> Self {
        TableSet(self.0 & !other.0)
    }

    /// Whether `self` is a subset of `other` (not necessarily proper).
    #[inline]
    pub const fn is_subset_of(&self, other: TableSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether the two sets share no table.
    #[inline]
    pub const fn is_disjoint(&self, other: TableSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Index of the lowest-numbered table in the set, or `None` if empty.
    #[inline]
    pub fn min_table(&self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterates over the member table indices in ascending order.
    #[inline]
    pub fn iter(&self) -> TableIter {
        TableIter(self.0)
    }

    /// Iterates over all *non-empty proper* subsets of `self`.
    ///
    /// This is the classic `(sub - 1) & set` enumeration used by join
    /// enumeration algorithms; it visits each of the `2^|self| - 2`
    /// candidate operand splits exactly once.
    #[inline]
    pub fn proper_subsets(&self) -> SubsetIter {
        SubsetIter::new(self.0)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn bits(&self) -> u64 {
        self.0
    }

    /// Iterates over all `k`-element subsets of `{0, .., n-1}` in
    /// ascending bit-pattern order (Gosper's hack). Used by optimizers that
    /// enumerate join results by cardinality without constraint structure
    /// (e.g. the SMA baseline).
    ///
    /// # Panics
    /// Panics if `n > 63` (the enumeration needs one spare bit) or `k > n`.
    pub fn subsets_of_size(n: usize, k: usize) -> KSubsetIter {
        assert!(n <= 63, "k-subset enumeration supports at most 63 tables");
        assert!(k <= n, "subset size {k} exceeds universe size {n}");
        KSubsetIter::new(n, k)
    }
}

/// Iterator over the `k`-element subsets of `{0, .., n-1}`.
pub struct KSubsetIter {
    cur: u64,
    limit: u64,
    done: bool,
}

impl KSubsetIter {
    fn new(n: usize, k: usize) -> Self {
        if k == 0 {
            // Single subset: the empty set.
            return KSubsetIter {
                cur: 0,
                limit: 1u64 << n,
                done: false,
            };
        }
        KSubsetIter {
            cur: (1u64 << k) - 1,
            limit: 1u64 << n,
            done: false,
        }
    }
}

impl Iterator for KSubsetIter {
    type Item = TableSet;

    fn next(&mut self) -> Option<TableSet> {
        if self.done || self.cur >= self.limit {
            self.done = true;
            return None;
        }
        let v = self.cur;
        if v == 0 {
            self.done = true;
            return Some(TableSet(0));
        }
        // Gosper's hack: next integer with the same popcount.
        let c = v & v.wrapping_neg();
        let r = v + c;
        self.cur = (((r ^ v) >> 2) / c) | r;
        Some(TableSet(v))
    }
}

impl fmt::Debug for TableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for TableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<usize> for TableSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        TableSet::from_tables(iter)
    }
}

/// Iterator over the members of a [`TableSet`].
pub struct TableIter(u64);

impl Iterator for TableIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let t = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(t)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for TableIter {}

/// Iterator over the non-empty proper subsets of a set.
pub struct SubsetIter {
    set: u64,
    sub: u64,
    done: bool,
}

impl SubsetIter {
    fn new(set: u64) -> Self {
        // Start at the first non-empty subset; a set with fewer than two
        // members has no non-empty proper subset.
        if set == 0 || set.count_ones() < 2 {
            SubsetIter {
                set,
                sub: 0,
                done: true,
            }
        } else {
            let first = set & set.wrapping_neg();
            SubsetIter {
                set,
                sub: first,
                done: false,
            }
        }
    }
}

impl Iterator for SubsetIter {
    type Item = TableSet;

    #[inline]
    fn next(&mut self) -> Option<TableSet> {
        if self.done {
            return None;
        }
        let cur = self.sub;
        // Advance: next subset of `set` in the standard enumeration.
        let next = (self.sub.wrapping_sub(self.set)) & self.set;
        if next == self.set || next == 0 {
            // The next value would be the full set (not proper) or wrap to
            // the empty set; either way we are finished after yielding `cur`.
            self.done = true;
        } else {
            self.sub = next;
        }
        Some(TableSet(cur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert!(TableSet::empty().is_empty());
        assert_eq!(TableSet::full(5).len(), 5);
        assert_eq!(TableSet::full(0), TableSet::empty());
        assert_eq!(TableSet::full(64).len(), 64);
    }

    #[test]
    fn singleton_membership() {
        let s = TableSet::singleton(7);
        assert!(s.contains(7));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic]
    fn singleton_out_of_range_panics() {
        let _ = TableSet::singleton(64);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let s = TableSet::empty().insert(3).insert(9).insert(3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(3), TableSet::singleton(9));
        assert_eq!(s.remove(42), s);
    }

    #[test]
    fn set_algebra() {
        let a = TableSet::from_tables([0, 1, 2]);
        let b = TableSet::from_tables([2, 3]);
        assert_eq!(a.union(b), TableSet::from_tables([0, 1, 2, 3]));
        assert_eq!(a.intersect(b), TableSet::singleton(2));
        assert_eq!(a.difference(b), TableSet::from_tables([0, 1]));
        assert!(!a.is_disjoint(b));
        assert!(a.difference(b).is_disjoint(b));
        assert!(TableSet::singleton(2).is_subset_of(a));
        assert!(!b.is_subset_of(a));
        assert!(a.is_subset_of(a));
    }

    #[test]
    fn iter_ascending() {
        let s = TableSet::from_tables([5, 1, 63, 0]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 1, 5, 63]);
        assert_eq!(s.min_table(), Some(0));
        assert_eq!(TableSet::empty().min_table(), None);
    }

    #[test]
    fn proper_subsets_counts() {
        // A k-element set has 2^k - 2 non-empty proper subsets.
        for k in 0..6usize {
            let s = TableSet::full(k);
            let count = s.proper_subsets().count();
            let expected = if k < 2 { 0 } else { (1usize << k) - 2 };
            assert_eq!(count, expected, "k={k}");
        }
    }

    #[test]
    fn proper_subsets_are_proper_and_unique() {
        let s = TableSet::from_tables([1, 4, 6, 9]);
        let subs: Vec<TableSet> = s.proper_subsets().collect();
        let mut seen = std::collections::HashSet::new();
        for sub in &subs {
            assert!(!sub.is_empty());
            assert!(sub.is_subset_of(s));
            assert_ne!(*sub, s);
            assert!(seen.insert(sub.bits()), "duplicate subset {sub:?}");
        }
        assert_eq!(subs.len(), (1 << 4) - 2);
    }

    #[test]
    fn complement_pairing_of_subsets() {
        // Each proper subset's complement within the set is also yielded.
        let s = TableSet::from_tables([0, 2, 3]);
        let subs: std::collections::HashSet<u64> = s.proper_subsets().map(|x| x.bits()).collect();
        for &b in &subs {
            let comp = s.difference(TableSet(b));
            assert!(subs.contains(&comp.bits()));
        }
    }

    #[test]
    fn debug_format() {
        let s = TableSet::from_tables([2, 0]);
        assert_eq!(format!("{s:?}"), "{0,2}");
    }

    #[test]
    fn k_subsets_have_binomial_counts() {
        let binom = |n: u64, k: u64| -> u64 { (0..k).fold(1u64, |acc, i| acc * (n - i) / (i + 1)) };
        for n in 1..=8usize {
            for k in 0..=n {
                let count = TableSet::subsets_of_size(n, k).count() as u64;
                assert_eq!(count, binom(n as u64, k as u64), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn k_subsets_are_correct_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in TableSet::subsets_of_size(6, 3) {
            assert_eq!(s.len(), 3);
            assert!(s.is_subset_of(TableSet::full(6)));
            assert!(seen.insert(s.bits()));
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn k_subsets_zero_k() {
        let v: Vec<TableSet> = TableSet::subsets_of_size(5, 0).collect();
        assert_eq!(v, vec![TableSet::empty()]);
    }

    #[test]
    fn k_subsets_full_k() {
        let v: Vec<TableSet> = TableSet::subsets_of_size(5, 5).collect();
        assert_eq!(v, vec![TableSet::full(5)]);
    }
}
