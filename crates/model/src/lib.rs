//! Query, catalog, statistics and workload model for the MPQ parallel query
//! optimizer.
//!
//! This crate provides the problem-model substrate from Section 3 of
//! Trummer & Koch, "Parallelizing Query Optimization on Shared-Nothing
//! Architectures" (VLDB 2016):
//!
//! * [`TableSet`] — a compact bitset over the tables of one query. Table sets
//!   are the currency of the Selinger dynamic program: every intermediate
//!   join result is identified by the set of base tables it contains.
//! * [`Catalog`] and [`TableStats`] — per-table statistics (cardinality,
//!   tuple width, attribute domain sizes) used by the cost model.
//! * [`Query`] and [`Predicate`] — a join query as a set of tables plus
//!   equality join predicates with selectivities.
//! * [`workload`] — the random query generator of Steinbrunn, Moerkotte &
//!   Kemper (VLDBJ 1997), which the paper uses for all benchmark queries,
//!   supporting chain, star, cycle and clique join graphs.
//!
//! Everything in this crate is deterministic given a seed, `Send + Sync`,
//! and independent of the optimizer itself.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod query;
pub mod tableset;
pub mod workload;

pub use catalog::{Catalog, TableId, TableStats};
pub use query::{JoinGraph, Predicate, Query};
pub use tableset::TableSet;
pub use workload::{WorkloadConfig, WorkloadGenerator};
