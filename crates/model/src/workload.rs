//! Random query generation after Steinbrunn, Moerkotte & Kemper
//! (VLDBJ 1997), the method the paper uses for all benchmark queries
//! ("We choose table cardinalities and attribute domain sizes by the method
//! introduced by Steinbrunn et al. which is commonly used for query
//! optimization benchmarks", Section 6.1).
//!
//! The generator draws, per table, a cardinality uniformly from
//! `[10, 100_000]` and a join-attribute domain size uniformly from a range
//! proportional to the cardinality; equality-predicate selectivity between
//! tables `a` and `b` is `1 / max(domain_a, domain_b)`. Join graphs can be
//! chains, stars, cycles or cliques. Everything is deterministic in the
//! seed so experiments are reproducible and every worker of a simulated
//! cluster can regenerate identical statistics.

use crate::catalog::{Catalog, TableStats};
use crate::query::{JoinGraph, Predicate, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the Steinbrunn-style generator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of tables per query.
    pub num_tables: usize,
    /// Join graph shape (the paper defaults to star).
    pub graph: JoinGraph,
    /// Minimum table cardinality (Steinbrunn: 10).
    pub min_cardinality: f64,
    /// Maximum table cardinality (Steinbrunn: 100 000).
    pub max_cardinality: f64,
    /// Tuple width bounds in bytes, drawn uniformly.
    pub min_tuple_bytes: f64,
    /// See `min_tuple_bytes`.
    pub max_tuple_bytes: f64,
}

impl WorkloadConfig {
    /// The paper's default: star-shaped join graph, Steinbrunn statistics.
    pub fn paper_default(num_tables: usize) -> Self {
        WorkloadConfig {
            num_tables,
            graph: JoinGraph::Star,
            min_cardinality: 10.0,
            max_cardinality: 100_000.0,
            min_tuple_bytes: 8.0,
            max_tuple_bytes: 200.0,
        }
    }

    /// Same statistics with an explicit graph shape (Figure 3 experiment).
    pub fn with_graph(num_tables: usize, graph: JoinGraph) -> Self {
        WorkloadConfig {
            graph,
            ..Self::paper_default(num_tables)
        }
    }
}

/// Deterministic random query generator.
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    rng: StdRng,
}

impl WorkloadGenerator {
    /// Creates a generator with the given configuration and seed.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (zero tables, inverted
    /// bounds, more than 64 tables).
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        assert!(config.num_tables >= 1, "query must join at least one table");
        assert!(config.num_tables <= 64, "at most 64 tables supported");
        assert!(
            config.min_cardinality >= 1.0 && config.min_cardinality <= config.max_cardinality,
            "invalid cardinality bounds"
        );
        assert!(
            config.min_tuple_bytes > 0.0 && config.min_tuple_bytes <= config.max_tuple_bytes,
            "invalid tuple width bounds"
        );
        WorkloadGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generates the next random query.
    pub fn next_query(&mut self) -> Query {
        let c = &self.config;
        let mut stats = Vec::with_capacity(c.num_tables);
        for _ in 0..c.num_tables {
            let cardinality = self
                .rng
                .random_range(c.min_cardinality..=c.max_cardinality)
                .round();
            // Steinbrunn draws attribute domains as a fraction of the
            // cardinality; we use [10%, 100%] which keeps selectivities in
            // a realistic range and never exceeds the key domain.
            let frac = self.rng.random_range(0.1..=1.0);
            let join_domain = (cardinality * frac).max(2.0).round();
            let tuple_bytes = self
                .rng
                .random_range(c.min_tuple_bytes..=c.max_tuple_bytes)
                .round();
            stats.push(TableStats {
                cardinality,
                tuple_bytes,
                join_domain,
            });
        }
        let catalog = Catalog::from_stats(stats);
        let predicates = c
            .graph
            .edges(c.num_tables)
            .into_iter()
            .map(|(a, b)| {
                let da = catalog.stats(a).join_domain;
                let db = catalog.stats(b).join_domain;
                Predicate {
                    left: a,
                    right: b,
                    selectivity: 1.0 / da.max(db),
                }
            })
            .collect();
        Query {
            catalog,
            predicates,
            graph: c.graph,
        }
    }

    /// Generates a batch of `count` queries (the paper reports medians over
    /// twenty random queries per data point).
    pub fn batch(&mut self, count: usize) -> Vec<Query> {
        (0..count).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = WorkloadConfig::paper_default(8);
        let q1 = WorkloadGenerator::new(cfg.clone(), 42).next_query();
        let q2 = WorkloadGenerator::new(cfg, 42).next_query();
        assert_eq!(q1, q2);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WorkloadConfig::paper_default(8);
        let q1 = WorkloadGenerator::new(cfg.clone(), 1).next_query();
        let q2 = WorkloadGenerator::new(cfg, 2).next_query();
        assert_ne!(q1, q2);
    }

    #[test]
    fn statistics_within_bounds() {
        let cfg = WorkloadConfig::paper_default(12);
        let mut g = WorkloadGenerator::new(cfg.clone(), 7);
        for q in g.batch(20) {
            for (_, s) in q.catalog.iter() {
                assert!(s.cardinality >= cfg.min_cardinality);
                assert!(s.cardinality <= cfg.max_cardinality);
                assert!(s.join_domain >= 2.0);
                assert!(s.join_domain <= s.cardinality.max(2.0));
                assert!(s.tuple_bytes >= cfg.min_tuple_bytes);
                assert!(s.tuple_bytes <= cfg.max_tuple_bytes);
            }
        }
    }

    #[test]
    fn selectivities_valid() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::paper_default(10), 3);
        for q in g.batch(10) {
            for p in &q.predicates {
                assert!(p.selectivity > 0.0 && p.selectivity <= 0.5);
                assert_ne!(p.left, p.right);
            }
        }
    }

    #[test]
    fn graph_shape_respected() {
        for graph in JoinGraph::ALL {
            let mut g = WorkloadGenerator::new(WorkloadConfig::with_graph(6, graph), 11);
            let q = g.next_query();
            assert_eq!(q.predicates.len(), graph.edges(6).len());
            assert_eq!(q.graph, graph);
        }
    }

    #[test]
    fn batch_size() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::paper_default(4), 5);
        assert_eq!(g.batch(20).len(), 20);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_tables() {
        let mut cfg = WorkloadConfig::paper_default(4);
        cfg.num_tables = 0;
        let _ = WorkloadGenerator::new(cfg, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_bounds() {
        let mut cfg = WorkloadConfig::paper_default(4);
        cfg.max_cardinality = 5.0;
        cfg.min_cardinality = 10.0;
        let _ = WorkloadGenerator::new(cfg, 0);
    }
}
