//! Join queries and join graphs.
//!
//! Following the paper's problem model (Section 3), a query is a set of
//! tables to be joined, plus equality join predicates. Cross products are
//! permitted (the paper deliberately does not restrict them, citing Ono &
//! Lohman), so any pair of subsets can be joined; predicates only influence
//! cardinality estimates.

use crate::catalog::{Catalog, TableId};
use crate::tableset::TableSet;
use serde::{Deserialize, Serialize};

/// Shape of the join graph connecting the query tables, as used in the
/// paper's Figure 3 experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinGraph {
    /// `Q_0 - Q_1 - ... - Q_{n-1}`.
    Chain,
    /// `Q_0` is the hub; every other table joins it. This is the paper's
    /// default shape.
    Star,
    /// A chain with an extra edge closing `Q_{n-1} - Q_0`.
    Cycle,
    /// Every pair of tables is connected.
    Clique,
}

impl JoinGraph {
    /// The edges (unordered table pairs) of this graph over `n` tables.
    pub fn edges(&self, n: usize) -> Vec<(TableId, TableId)> {
        let mut e = Vec::new();
        match self {
            JoinGraph::Chain => {
                for i in 1..n {
                    e.push((i - 1, i));
                }
            }
            JoinGraph::Star => {
                for i in 1..n {
                    e.push((0, i));
                }
            }
            JoinGraph::Cycle => {
                for i in 1..n {
                    e.push((i - 1, i));
                }
                if n > 2 {
                    e.push((n - 1, 0));
                }
            }
            JoinGraph::Clique => {
                for i in 0..n {
                    for j in (i + 1)..n {
                        e.push((i, j));
                    }
                }
            }
        }
        e
    }

    /// All four shapes, in the order used by the Figure 3 experiment.
    pub const ALL: [JoinGraph; 4] = [
        JoinGraph::Chain,
        JoinGraph::Star,
        JoinGraph::Cycle,
        JoinGraph::Clique,
    ];
}

/// An equality join predicate `t_left.attr = t_right.attr` with its
/// estimated selectivity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// One side of the equality.
    pub left: TableId,
    /// The other side.
    pub right: TableId,
    /// Fraction of the Cartesian product that satisfies the predicate
    /// (`0 < selectivity <= 1`).
    pub selectivity: f64,
}

/// A join query: `n` tables (statistics in the embedded [`Catalog`]) plus
/// join predicates. Serializable so the master can ship it — together with
/// its query-specific statistics — to every worker, as in Algorithm 1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Per-table statistics (the "query-specific statistics" of Section 4.1).
    pub catalog: Catalog,
    /// Equality join predicates.
    pub predicates: Vec<Predicate>,
    /// Shape used to generate the predicates, kept for reporting.
    pub graph: JoinGraph,
}

impl Query {
    /// Number of tables joined by the query.
    pub fn num_tables(&self) -> usize {
        self.catalog.len()
    }

    /// The full table set `{0, .., n-1}`.
    pub fn all_tables(&self) -> TableSet {
        TableSet::full(self.num_tables())
    }

    /// Combined selectivity of all predicates that connect a table in
    /// `left` with a table in `right`, under the standard independence
    /// assumption (product of selectivities). Returns `1.0` for a pure
    /// cross product.
    pub fn join_selectivity(&self, left: TableSet, right: TableSet) -> f64 {
        let mut sel = 1.0;
        for p in &self.predicates {
            let crosses = (left.contains(p.left) && right.contains(p.right))
                || (left.contains(p.right) && right.contains(p.left));
            if crosses {
                sel *= p.selectivity;
            }
        }
        sel
    }

    /// Combined selectivity of all predicates with both endpoints inside
    /// `tables` — the total predicate effect on the join of that set.
    pub fn internal_selectivity(&self, tables: TableSet) -> f64 {
        let mut sel = 1.0;
        for p in &self.predicates {
            if tables.contains(p.left) && tables.contains(p.right) {
                sel *= p.selectivity;
            }
        }
        sel
    }

    /// A rough upper bound on the serialized byte size of the query
    /// (`b_q` in the paper's complexity analysis), used by tests asserting
    /// the `O(m * (b_q + b_p))` network bound.
    pub fn approx_byte_size(&self) -> usize {
        // 3 f64 per table + 2 usize + 1 f64 per predicate + headers.
        24 * self.num_tables() + 24 * self.predicates.len() + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableStats;

    fn query_with_edges(n: usize, graph: JoinGraph, sel: f64) -> Query {
        let catalog = Catalog::from_stats(
            (0..n)
                .map(|i| TableStats::with_cardinality(100.0 * (i + 1) as f64))
                .collect(),
        );
        let predicates = graph
            .edges(n)
            .into_iter()
            .map(|(a, b)| Predicate {
                left: a,
                right: b,
                selectivity: sel,
            })
            .collect();
        Query {
            catalog,
            predicates,
            graph,
        }
    }

    #[test]
    fn chain_edges() {
        assert_eq!(JoinGraph::Chain.edges(4), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn star_edges() {
        assert_eq!(JoinGraph::Star.edges(4), vec![(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn cycle_edges_close_the_loop() {
        let e = JoinGraph::Cycle.edges(4);
        assert_eq!(e.len(), 4);
        assert!(e.contains(&(3, 0)));
    }

    #[test]
    fn cycle_of_two_is_a_chain() {
        assert_eq!(JoinGraph::Cycle.edges(2), vec![(0, 1)]);
    }

    #[test]
    fn clique_edge_count() {
        assert_eq!(JoinGraph::Clique.edges(5).len(), 5 * 4 / 2);
    }

    #[test]
    fn join_selectivity_crossing_only() {
        let q = query_with_edges(4, JoinGraph::Chain, 0.1);
        // Split {0,1} vs {2,3}: only edge (1,2) crosses.
        let l = TableSet::from_tables([0, 1]);
        let r = TableSet::from_tables([2, 3]);
        assert!((q.join_selectivity(l, r) - 0.1).abs() < 1e-12);
        // Split {0,2} vs {1,3}: edges (0,1),(1,2),(2,3) all cross.
        let l = TableSet::from_tables([0, 2]);
        let r = TableSet::from_tables([1, 3]);
        assert!((q.join_selectivity(l, r) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn cross_product_has_unit_selectivity() {
        let q = query_with_edges(4, JoinGraph::Chain, 0.1);
        let l = TableSet::singleton(0);
        let r = TableSet::singleton(3);
        assert_eq!(q.join_selectivity(l, r), 1.0);
    }

    #[test]
    fn internal_selectivity_counts_contained_edges() {
        let q = query_with_edges(4, JoinGraph::Chain, 0.5);
        let s = TableSet::from_tables([0, 1, 2]);
        // Edges (0,1) and (1,2) are inside.
        assert!((q.internal_selectivity(s) - 0.25).abs() < 1e-12);
        assert_eq!(q.internal_selectivity(TableSet::singleton(1)), 1.0);
    }

    #[test]
    fn selectivity_consistency_between_views() {
        // internal(L ∪ R) == internal(L) * internal(R) * crossing(L, R)
        let q = query_with_edges(5, JoinGraph::Cycle, 0.3);
        let l = TableSet::from_tables([0, 1, 4]);
        let r = TableSet::from_tables([2, 3]);
        let lhs = q.internal_selectivity(l.union(r));
        let rhs = q.internal_selectivity(l) * q.internal_selectivity(r) * q.join_selectivity(l, r);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn byte_size_grows_with_tables() {
        let small = query_with_edges(4, JoinGraph::Star, 0.1);
        let big = query_with_edges(16, JoinGraph::Star, 0.1);
        assert!(big.approx_byte_size() > small.approx_byte_size());
    }
}
