//! Table statistics and the catalog.
//!
//! Workers estimate plan costs from metadata only (Section 4.1 of the paper:
//! "workers need access to metadata (e.g., cardinality and value distribution
//! statistics) to estimate plan execution costs"). The catalog is the
//! container for that metadata. In the shared-nothing setting it is either
//! shipped with each query or pre-distributed to the workers; both modes are
//! supported by the cluster substrate, which serializes [`TableStats`].

use serde::{Deserialize, Serialize};

/// Identifier of a base table within one query: the consecutive numbering
/// `Q_0 .. Q_{n-1}` shared by master and workers.
pub type TableId = usize;

/// Per-table statistics, following the benchmark-generation method of
/// Steinbrunn et al. (VLDBJ 1997) used by the paper.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Number of tuples in the table.
    pub cardinality: f64,
    /// Width of one tuple in bytes (used for buffer-space costing).
    pub tuple_bytes: f64,
    /// Domain size of the table's join attribute. Equality-predicate
    /// selectivity between two tables is `1 / max(domain_a, domain_b)`,
    /// the standard System-R estimate.
    pub join_domain: f64,
}

impl TableStats {
    /// Creates statistics with the given cardinality, a default tuple width
    /// of 100 bytes, and a join-attribute domain equal to the cardinality
    /// (i.e. a key column).
    pub fn with_cardinality(cardinality: f64) -> Self {
        TableStats {
            cardinality,
            tuple_bytes: 100.0,
            join_domain: cardinality,
        }
    }
}

/// The statistics catalog for one query: statistics for each of the `n`
/// tables, indexed by [`TableId`].
///
/// The catalog carries a **statistics epoch**: a counter bumped on every
/// statistics mutation ([`Catalog::set_stats`], [`Catalog::stats_mut`],
/// [`Catalog::add_table`], or an explicit [`Catalog::bump_epoch`]). The
/// cross-query memo cache folds the epoch into its keys, so entries
/// computed against earlier statistics become structurally unreachable
/// the instant the statistics change — even if a later mutation restores
/// the exact old values. The epoch is optimizer-local bookkeeping and is
/// deliberately not part of the wire format (workers key their shard-local
/// caches by the shipped statistics bits themselves).
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableStats>,
    epoch: u64,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a catalog from per-table statistics, at epoch zero.
    pub fn from_stats(tables: Vec<TableStats>) -> Self {
        Catalog { tables, epoch: 0 }
    }

    /// Adds a table and returns its id. Counts as a statistics mutation
    /// (the epoch is bumped).
    pub fn add_table(&mut self, stats: TableStats) -> TableId {
        self.tables.push(stats);
        self.epoch += 1;
        self.tables.len() - 1
    }

    /// The statistics epoch: how many mutations this catalog has seen.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Explicitly invalidates every cached result derived from this
    /// catalog (e.g. after an out-of-band cost-model recalibration).
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Replaces table `id`'s statistics, bumping the epoch.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn set_stats(&mut self, id: TableId, stats: TableStats) {
        self.tables[id] = stats;
        self.epoch += 1;
    }

    /// Mutable statistics access; the epoch is bumped up front, so any
    /// write through the returned reference is covered.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn stats_mut(&mut self, id: TableId) -> &mut TableStats {
        self.epoch += 1;
        &mut self.tables[id]
    }

    /// Number of tables in the catalog.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Statistics for table `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn stats(&self, id: TableId) -> &TableStats {
        &self.tables[id]
    }

    /// Iterates over `(id, stats)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &TableStats)> {
        self.tables.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let a = c.add_table(TableStats::with_cardinality(1000.0));
        let b = c.add_table(TableStats {
            cardinality: 42.0,
            tuple_bytes: 8.0,
            join_domain: 10.0,
        });
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats(a).cardinality, 1000.0);
        assert_eq!(c.stats(a).join_domain, 1000.0);
        assert_eq!(c.stats(b).tuple_bytes, 8.0);
    }

    #[test]
    fn epoch_tracks_every_mutation() {
        let mut c = Catalog::from_stats(vec![TableStats::with_cardinality(10.0)]);
        assert_eq!(c.epoch(), 0);
        c.add_table(TableStats::with_cardinality(20.0));
        assert_eq!(c.epoch(), 1);
        c.set_stats(0, TableStats::with_cardinality(99.0));
        assert_eq!(c.epoch(), 2);
        c.stats_mut(1).cardinality = 7.0;
        assert_eq!(c.epoch(), 3);
        c.bump_epoch();
        assert_eq!(c.epoch(), 4);
        assert_eq!(c.stats(0).cardinality, 99.0);
        assert_eq!(c.stats(1).cardinality, 7.0);
    }

    #[test]
    fn iter_order_matches_ids() {
        let c = Catalog::from_stats(vec![
            TableStats::with_cardinality(1.0),
            TableStats::with_cardinality(2.0),
        ]);
        let ids: Vec<TableId> = c.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
