//! Deterministic, seed-driven fault injection.
//!
//! The paper's deployment argument for MPQ rests on fault tolerance: a
//! one-round, stateless task model means a failed or straggling worker
//! costs one re-executed partition range, while SMA's replicated-memo
//! rounds make recovery as expensive as re-broadcasting the whole memo.
//! This module provides the fault model that lets tests and benchmarks
//! exercise that argument on the simulated cluster:
//!
//! * a [`FaultPlan`] describes *probabilities* of faults (worker crash
//!   before or after replying, reply dropped by the network, reply delayed
//!   by a straggler) plus a seed;
//! * at cluster spawn time the plan is resolved into a [`FaultSchedule`],
//!   which maps every `(worker, message index)` pair to one concrete
//!   [`FaultAction`].
//!
//! **Determinism.** The schedule is a pure function of `(plan, seed,
//! num_workers)`: the same seed always produces the same crash points,
//! drops and straggles per `(worker, message index)`. What *can* vary
//! between runs is how many messages each worker ends up receiving (retry
//! targeting depends on wall-clock timing), so run-level fault *counts*
//! may differ — but the correctness-relevant guarantee (which faults fire
//! for which message) is fixed per seed, and the optimal plan cost under
//! any schedule equals the fault-free cost as long as one worker survives.

use std::time::Duration;

/// The concrete fault applied to one delivered message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: handle the message and deliver any reply normally.
    Deliver,
    /// The worker dies before handling the message; no reply is ever sent
    /// (Spark executor lost before task completion).
    CrashBeforeReply,
    /// The worker handles the message and replies, then dies
    /// (crash mid-protocol: fatal for SMA's later rounds, harmless for
    /// MPQ's single round).
    CrashAfterReply,
    /// The worker handles the message but its reply is lost in the
    /// network.
    DropReply,
    /// The worker handles the message but sends its reply only after the
    /// extra delay (straggler).
    Straggle(Duration),
}

/// Seed-driven fault configuration. `FaultPlan::default()` injects
/// nothing; [`Cluster::spawn`](crate::Cluster::spawn) uses that.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault decisions (same seed → same schedule).
    pub seed: u64,
    /// Probability that a given worker crashes at some point.
    pub crash_prob: f64,
    /// Given a crash, probability it happens *after* the reply is sent
    /// (crash-mid-protocol) rather than before.
    pub crash_after_reply_prob: f64,
    /// Per-message probability that the reply is dropped.
    pub drop_prob: f64,
    /// Per-message probability that the reply straggles.
    pub straggle_prob: f64,
    /// Extra reply delay of a straggling message, in microseconds.
    pub straggle_us: u64,
    /// Number of workers guaranteed to never crash (lowest-id crash
    /// candidates are spared first). Keep at ≥ 1 so a retrying master can
    /// always make progress.
    pub min_survivors: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

impl FaultPlan {
    /// The fault-free plan.
    pub const NONE: FaultPlan = FaultPlan {
        seed: 0,
        crash_prob: 0.0,
        crash_after_reply_prob: 0.0,
        drop_prob: 0.0,
        straggle_prob: 0.0,
        straggle_us: 0,
        min_survivors: 1,
    };

    /// A plan that deterministically crashes every worker except the
    /// guaranteed survivors, before any reply.
    pub fn crash_all_but(min_survivors: usize, seed: u64) -> Self {
        FaultPlan {
            seed,
            crash_prob: 1.0,
            crash_after_reply_prob: 0.0,
            min_survivors,
            ..FaultPlan::NONE
        }
    }

    /// Whether this plan can never inject a fault.
    pub fn is_none(&self) -> bool {
        self.crash_prob <= 0.0 && self.drop_prob <= 0.0 && self.straggle_prob <= 0.0
    }

    /// Deterministically scans seeds `0..limit` and returns this plan
    /// with the first seed whose resolved schedule for `num_workers`
    /// satisfies `pred`. The probabilistic knobs make specific fault
    /// placements a matter of seed choice; tests and benches use this to
    /// pin a placement (e.g. "some worker crashes on its very first
    /// task") without hard-coding seeds that silently break when the
    /// schedule hash changes.
    pub fn with_seed_where<F>(&self, num_workers: usize, limit: u64, pred: F) -> Option<FaultPlan>
    where
        F: Fn(&FaultSchedule) -> bool,
    {
        (0..limit)
            .map(|seed| FaultPlan { seed, ..*self })
            .find(|p| pred(&p.schedule(num_workers)))
    }

    /// A [`FaultPlan::crash_all_but`] plan guaranteed (by seed search
    /// over the deterministic schedules) to kill at least one worker of a
    /// `num_workers` cluster on its very first task — crash points are
    /// spread over the first few messages, so not every seed crashes
    /// round one.
    ///
    /// Audited panic site (see `crates/xtask/allow/panics.allow`): the
    /// bounded seed search is documented to succeed, so failure means the
    /// contract itself broke — aborting the chaos helper is the right call.
    #[allow(clippy::expect_used)]
    pub fn crash_on_first_task(num_workers: usize, min_survivors: usize) -> FaultPlan {
        FaultPlan::crash_all_but(min_survivors, 0)
            .with_seed_where(num_workers, 4096, |s| {
                (0..num_workers).any(|w| s.action(w, 0) == FaultAction::CrashBeforeReply)
            })
            .expect("some seed within the search limit crashes a worker at message 0")
    }

    /// Resolves the plan into the concrete per-worker schedule for a
    /// cluster of `num_workers` nodes. Pure function of
    /// `(self, num_workers)`.
    pub fn schedule(&self, num_workers: usize) -> FaultSchedule {
        let mut workers: Vec<WorkerFaults> = (0..num_workers)
            .map(|w| {
                let crashes = unit(hash3(self.seed, w as u64, SALT_CRASH)) < self.crash_prob;
                let crash_at = crashes.then(|| {
                    // Crash on one of the first few messages: index 0
                    // exercises crash-on-first-task, later indices only
                    // fire under retries or multi-round protocols.
                    hash3(self.seed, w as u64, SALT_CRASH_AT) % 3
                });
                let crash_after_reply =
                    unit(hash3(self.seed, w as u64, SALT_CRASH_KIND)) < self.crash_after_reply_prob;
                WorkerFaults {
                    seed: self.seed,
                    worker: w as u64,
                    crash_at,
                    crash_after_reply,
                    drop_prob: self.drop_prob,
                    straggle_prob: self.straggle_prob,
                    straggle_us: self.straggle_us,
                }
            })
            .collect();
        // Spare the lowest-id crash candidates until enough workers are
        // guaranteed to survive (deterministic).
        let min_survivors = self.min_survivors.min(num_workers);
        let mut survivors = workers.iter().filter(|w| w.crash_at.is_none()).count();
        for w in workers.iter_mut() {
            if survivors >= min_survivors {
                break;
            }
            if w.crash_at.is_some() {
                w.crash_at = None;
                survivors += 1;
            }
        }
        FaultSchedule { workers }
    }
}

/// The resolved fault schedule of one cluster: one [`WorkerFaults`] per
/// worker.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    workers: Vec<WorkerFaults>,
}

impl FaultSchedule {
    /// A schedule injecting nothing for `num_workers` workers.
    pub fn none(num_workers: usize) -> Self {
        FaultPlan::NONE.schedule(num_workers)
    }

    /// The per-worker slice of the schedule.
    pub fn worker(&self, id: usize) -> WorkerFaults {
        self.workers[id]
    }

    /// Number of workers covered.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The action for message `msg_index` (0-based receive order) at
    /// `worker`.
    pub fn action(&self, worker: usize, msg_index: u64) -> FaultAction {
        self.workers[worker].action(msg_index)
    }

    /// Workers that are scheduled to crash (at some message index).
    pub fn crashing_workers(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.crash_at.map(|_| i))
            .collect()
    }
}

/// One worker's resolved fault behaviour (moved into the worker thread).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkerFaults {
    seed: u64,
    worker: u64,
    crash_at: Option<u64>,
    crash_after_reply: bool,
    drop_prob: f64,
    straggle_prob: f64,
    straggle_us: u64,
}

impl WorkerFaults {
    /// A worker slice injecting nothing.
    pub const NONE: WorkerFaults = WorkerFaults {
        seed: 0,
        worker: 0,
        crash_at: None,
        crash_after_reply: false,
        drop_prob: 0.0,
        straggle_prob: 0.0,
        straggle_us: 0,
    };

    /// The action for this worker's `msg_index`-th received message.
    pub fn action(&self, msg_index: u64) -> FaultAction {
        if self.crash_at == Some(msg_index) {
            return if self.crash_after_reply {
                FaultAction::CrashAfterReply
            } else {
                FaultAction::CrashBeforeReply
            };
        }
        if unit(hash3(self.seed, self.worker, SALT_DROP ^ mix(msg_index))) < self.drop_prob {
            return FaultAction::DropReply;
        }
        if self.straggle_us > 0
            && unit(hash3(
                self.seed,
                self.worker,
                SALT_STRAGGLE ^ mix(msg_index),
            )) < self.straggle_prob
        {
            return FaultAction::Straggle(Duration::from_micros(self.straggle_us));
        }
        FaultAction::Deliver
    }
}

const SALT_CRASH: u64 = 0x6372_6173_6821_0001; // "crash!"
const SALT_CRASH_AT: u64 = 0x6372_6173_6821_0002;
const SALT_CRASH_KIND: u64 = 0x6372_6173_6821_0003;
const SALT_DROP: u64 = 0x6472_6f70_2121_0004; // "drop!!"
const SALT_STRAGGLE: u64 = 0x736c_6f77_2121_0005; // "slow!!"

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash3(seed: u64, worker: u64, salt: u64) -> u64 {
    mix(seed ^ mix(worker.wrapping_add(salt)))
}

/// Maps a hash to the unit interval `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn default_plan_is_none_and_delivers() {
        let plan = FaultPlan::default();
        assert!(plan.is_none());
        let schedule = plan.schedule(4);
        for w in 0..4 {
            for m in 0..8 {
                assert_eq!(schedule.action(w, m), FaultAction::Deliver);
            }
        }
        assert!(schedule.crashing_workers().is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan {
            seed: 42,
            crash_prob: 0.5,
            crash_after_reply_prob: 0.5,
            drop_prob: 0.3,
            straggle_prob: 0.3,
            straggle_us: 1000,
            min_survivors: 1,
        };
        assert_eq!(plan.schedule(8), plan.schedule(8));
        // And actions are reproducible point-wise.
        let s = plan.schedule(8);
        for w in 0..8 {
            for m in 0..16 {
                assert_eq!(s.action(w, m), s.action(w, m));
            }
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let mk = |seed| FaultPlan {
            seed,
            crash_prob: 0.5,
            drop_prob: 0.5,
            ..FaultPlan::NONE
        };
        let a = mk(1).schedule(16);
        let b = mk(2).schedule(16);
        assert_ne!(a, b);
    }

    #[test]
    fn min_survivors_is_honored() {
        for survivors in [1usize, 2, 3] {
            let plan = FaultPlan::crash_all_but(survivors, 7);
            let s = plan.schedule(6);
            assert_eq!(s.crashing_workers().len(), 6 - survivors);
        }
        // More survivors than workers: nobody crashes.
        let s = FaultPlan::crash_all_but(10, 7).schedule(3);
        assert!(s.crashing_workers().is_empty());
    }

    #[test]
    fn crash_fires_exactly_once_per_worker() {
        let plan = FaultPlan {
            crash_prob: 1.0,
            min_survivors: 0,
            ..FaultPlan::NONE
        };
        let s = plan.schedule(4);
        for w in 0..4 {
            let crashes: Vec<u64> = (0..8)
                .filter(|&m| {
                    matches!(
                        s.action(w, m),
                        FaultAction::CrashBeforeReply | FaultAction::CrashAfterReply
                    )
                })
                .collect();
            assert_eq!(crashes.len(), 1, "worker {w}: {crashes:?}");
            assert!(crashes[0] < 3, "crash index must be early");
        }
    }

    #[test]
    fn seed_search_finds_first_task_crashes() {
        for workers in [2usize, 4, 8] {
            let plan = FaultPlan::crash_on_first_task(workers, 1);
            let s = plan.schedule(workers);
            assert!((0..workers).any(|w| s.action(w, 0) == FaultAction::CrashBeforeReply));
            assert!(s.crashing_workers().len() < workers, "a survivor remains");
        }
        // An unsatisfiable predicate yields None instead of spinning.
        assert_eq!(FaultPlan::NONE.with_seed_where(2, 16, |_| false), None);
    }

    #[test]
    fn straggle_carries_configured_delay() {
        let plan = FaultPlan {
            straggle_prob: 1.0,
            straggle_us: 1234,
            ..FaultPlan::NONE
        };
        let s = plan.schedule(1);
        assert_eq!(
            s.action(0, 0),
            FaultAction::Straggle(Duration::from_micros(1234))
        );
    }

    #[test]
    fn unit_maps_into_unit_interval() {
        for x in [0u64, 1, u64::MAX, 0xdead_beef] {
            let u = unit(mix(x));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
