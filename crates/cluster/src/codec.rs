//! Binary wire format.
//!
//! A small, explicit, length-checked binary codec. Fixed-width
//! little-endian primitives; collections are length-prefixed with `u32`.
//! Every type that crosses the simulated network implements [`Wire`];
//! the byte counts produced here are the "Network (bytes)" series of the
//! paper's figures, so the format is deliberately compact (a query costs
//! `O(b_q)`, a plan `O(b_p)` — both linear in the query size).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mpq_cost::{CostVector, JoinOp, Objective, Order, ScanOp};
use mpq_dp::WorkerStats;
use mpq_model::{Catalog, JoinGraph, Predicate, Query, TableSet, TableStats};
use mpq_partition::PlanSpace;
use mpq_plan::{Plan, PlanEntry, PlanNode};
use std::fmt;

/// Error produced when decoding a malformed or truncated message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes remained than the decoder needed.
    Truncated {
        /// Bytes required by the read.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// An enum discriminant byte had no defined meaning.
    BadTag {
        /// The offending discriminant.
        tag: u8,
        /// The type being decoded.
        ty: &'static str,
    },
    /// A length prefix exceeded the sanity limit.
    LengthOverflow(u64),
    /// A table-index byte exceeded the [`TableSet`] capacity (64 tables),
    /// so it cannot name a real table of any decodable query.
    IndexOutOfRange {
        /// The offending index byte.
        index: u8,
        /// The type being decoded.
        ty: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated message: needed {needed} bytes, had {available}"
                )
            }
            DecodeError::BadTag { tag, ty } => write!(f, "invalid tag {tag} for {ty}"),
            DecodeError::LengthOverflow(n) => write!(f, "length prefix {n} exceeds limit"),
            DecodeError::IndexOutOfRange { index, ty } => write!(
                f,
                "table index {index} in {ty} exceeds the {}-table wire limit",
                TableSet::MAX_TABLES
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Error produced when a value cannot be represented on the wire.
///
/// [`Wire::encode`] itself stays infallible (most call sites encode
/// values that are valid by construction); a violation instead **poisons**
/// the [`Encoder`] and writes an unambiguous sentinel that every decoder
/// rejects, so the corruption can never round-trip silently. Boundary
/// code that accepts caller-supplied values checks via
/// [`Wire::try_to_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// A table index ≥ [`TableSet::MAX_TABLES`] cannot name a real table
    /// (table sets are a `u64` bitset) and does not fit the wire's
    /// one-byte index field without truncation.
    TableIndexOutOfRange {
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TableIndexOutOfRange { index } => write!(
                f,
                "table index {index} exceeds the {}-table wire limit",
                TableSet::MAX_TABLES
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Sanity cap on decoded collection lengths (defense against corrupted
/// length prefixes).
const MAX_LEN: u64 = 1 << 28;

/// Streaming encoder over a growable buffer.
#[derive(Default)]
pub struct Encoder {
    buf: BytesMut,
    /// First unrepresentable value seen, if any (sticky). See
    /// [`EncodeError`] for the poison protocol.
    poisoned: Option<EncodeError>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder {
            buf: BytesMut::with_capacity(256),
            poisoned: None,
        }
    }

    /// Finalizes and returns the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes a `u32` (little endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Writes a `u64` (little endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Writes an `f64` (IEEE-754 bits, little endian).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Writes a collection length prefix.
    ///
    /// Audited panic site (see `crates/xtask/allow/panics.allow`): a
    /// collection beyond `u32::MAX` elements cannot be represented by the
    /// length prefix at all, and `MAX_LEN` rejects far smaller ones on
    /// decode.
    #[allow(clippy::expect_used)]
    pub fn put_len(&mut self, len: usize) {
        self.put_u32(u32::try_from(len).expect("collection too large to encode"));
    }

    /// Writes a one-byte table index, validating it against the
    /// [`TableSet`] capacity. An out-of-range index poisons the encoder
    /// and writes the sentinel `0xFF` — which every table-index decoder
    /// rejects — instead of silently truncating to `u8` (the original
    /// corruption bug this guards against).
    pub fn put_table_index(&mut self, index: usize) {
        if index < TableSet::MAX_TABLES {
            self.put_u8(index as u8);
        } else {
            self.poison(EncodeError::TableIndexOutOfRange { index });
            self.put_u8(0xFF);
        }
    }

    /// Records an unrepresentable value; the first error sticks.
    pub fn poison(&mut self, e: EncodeError) {
        self.poisoned.get_or_insert(e);
    }

    /// The first unrepresentable value encountered so far, if any.
    pub fn error(&self) -> Option<EncodeError> {
        self.poisoned
    }
}

/// Cursor-style decoder over received bytes.
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.len() < n {
            Err(DecodeError::Truncated {
                needed: n,
                available: self.buf.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        let v = self.buf[0];
        self.buf = &self.buf[1..];
        Ok(v)
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        let mut b = self.buf;
        let v = b.get_u32_le();
        self.buf = b;
        Ok(v)
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        let mut b = self.buf;
        let v = b.get_u64_le();
        self.buf = b;
        Ok(v)
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        self.need(8)?;
        let mut b = self.buf;
        let v = b.get_f64_le();
        self.buf = b;
        Ok(v)
    }

    /// Reads a collection length prefix.
    pub fn get_len(&mut self) -> Result<usize, DecodeError> {
        let v = self.get_u32()? as u64;
        if v > MAX_LEN {
            return Err(DecodeError::LengthOverflow(v));
        }
        Ok(v as usize)
    }

    /// Reads a one-byte table index, rejecting values that exceed the
    /// [`TableSet`] capacity — including the `0xFF` sentinel a poisoned
    /// encoder writes — with a typed error.
    pub fn get_table_index(&mut self, ty: &'static str) -> Result<usize, DecodeError> {
        let index = self.get_u8()?;
        if (index as usize) < TableSet::MAX_TABLES {
            Ok(index as usize)
        } else {
            Err(DecodeError::IndexOutOfRange { index, ty })
        }
    }
}

/// Types that can cross the simulated network.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `enc`.
    fn encode(&self, enc: &mut Encoder);
    /// Decodes one value, consuming bytes from `dec`.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Convenience: encodes `self` into a fresh byte buffer.
    ///
    /// Infallible by design; a value the wire cannot represent encodes
    /// to a sentinel that decoders reject with a typed error (see
    /// [`EncodeError`]). Boundary code validating caller input should
    /// prefer [`Wire::try_to_bytes`].
    fn to_bytes(&self) -> Bytes {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Encodes `self`, surfacing unrepresentable values as a typed
    /// [`EncodeError`] instead of sentinel bytes.
    fn try_to_bytes(&self) -> Result<Bytes, EncodeError> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        match enc.error() {
            Some(e) => Err(e),
            None => Ok(enc.finish()),
        }
    }

    /// Convenience: decodes a value from `buf`, requiring full consumption.
    fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(buf);
        let v = Self::decode(&mut dec)?;
        Ok(v)
    }
}

/// Identifier of one optimization session (one query) multiplexed over a
/// long-lived cluster.
///
/// Every message on the simulated network is framed in a
/// [`SessionEnvelope`] carrying the owning session's `QueryId`, so a
/// single resident cluster can serve many in-flight queries concurrently:
/// workers key per-query state by it, and the master routes replies to
/// the owning session by it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl QueryId {
    /// Encoded size: one little-endian `u64`. `xtask lint` checks this
    /// against the field widths [`Wire::encode`] actually writes.
    pub const WIRE_SIZE: usize = 8;
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl Wire for QueryId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(QueryId(dec.get_u64()?))
    }
}

/// The wire frame around every message: an 8-byte little-endian
/// [`QueryId`] followed by the payload bytes. The id crosses the network,
/// so framed lengths — payload plus 8 — are what the byte counters and
/// the latency model see.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionEnvelope {
    /// The session the payload belongs to.
    pub query: QueryId,
    /// The application-level message bytes.
    pub payload: Bytes,
}

impl SessionEnvelope {
    /// Size of the frame header (the little-endian [`QueryId`]), in bytes.
    /// Byte counters and the latency model charge `payload + HEADER_BYTES`
    /// per message.
    pub const HEADER_BYTES: usize = QueryId::WIRE_SIZE;

    /// Frames `payload` for `query`: the bytes that actually cross the
    /// simulated network.
    pub fn frame(query: QueryId, payload: &[u8]) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::HEADER_BYTES + payload.len());
        buf.put_u64_le(query.0);
        buf.extend_from_slice(payload);
        buf.freeze()
    }

    /// Splits a framed message back into its session id and payload.
    pub fn unframe(framed: &[u8]) -> Result<SessionEnvelope, DecodeError> {
        let mut dec = Decoder::new(framed);
        let id = dec.get_u64()?;
        Ok(SessionEnvelope {
            query: QueryId(id),
            payload: Bytes::copy_from_slice(&framed[Self::HEADER_BYTES..]),
        })
    }
}

/// A lightweight worker → master progress report for one in-flight task:
/// how many partitions of the echoed range the worker has completed so
/// far. Fixed-size (three little-endian `u64`s, 24 bytes), so piggybacking
/// progress on the reply stream costs `O(1)` bytes per report — the
/// master's straggler detector reads *relative* progress from these
/// without any extra coordination round.
///
/// The range echo (`first_partition`, `partition_count`) identifies the
/// task exactly the way replies do, so progress reports survive
/// speculative re-execution: a report is attributed to whichever
/// assignment entry currently carries that range, and reports for
/// superseded ranges merely refresh liveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Progress {
    /// First partition ID of the range being worked on (task echo).
    pub first_partition: u64,
    /// Partitions of the range completed so far (strictly less than
    /// `partition_count`: completing the range is signalled by the reply
    /// itself, never by a progress report).
    pub completed: u64,
    /// Number of partitions in the range (task echo).
    pub partition_count: u64,
}

impl Progress {
    /// Encoded size: three little-endian `u64`s. `xtask lint` checks this
    /// against the field widths [`Wire::encode`] actually writes, so the
    /// "O(1) bytes per report" claim cannot silently rot.
    pub const WIRE_SIZE: usize = 24;
}

impl Wire for Progress {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.first_partition);
        enc.put_u64(self.completed);
        enc.put_u64(self.partition_count);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Progress {
            first_partition: dec.get_u64()?,
            completed: dec.get_u64()?,
            partition_count: dec.get_u64()?,
        })
    }
}

impl Wire for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_u64()
    }
}

impl Wire for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_f64()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.len());
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = dec.get_len()?;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl Wire for TableSet {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.bits());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TableSet(dec.get_u64()?))
    }
}

impl Wire for TableStats {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.cardinality);
        enc.put_f64(self.tuple_bytes);
        enc.put_f64(self.join_domain);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TableStats {
            cardinality: dec.get_f64()?,
            tuple_bytes: dec.get_f64()?,
            join_domain: dec.get_f64()?,
        })
    }
}

impl Wire for Predicate {
    fn encode(&self, enc: &mut Encoder) {
        // Table indices are one byte on the wire but `usize` in memory;
        // `put_table_index` validates against the 64-table `TableSet`
        // capacity instead of silently truncating with `as u8`.
        enc.put_table_index(self.left);
        enc.put_table_index(self.right);
        enc.put_f64(self.selectivity);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Predicate {
            left: dec.get_table_index("Predicate")?,
            right: dec.get_table_index("Predicate")?,
            selectivity: dec.get_f64()?,
        })
    }
}

impl Wire for JoinGraph {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            JoinGraph::Chain => 0,
            JoinGraph::Star => 1,
            JoinGraph::Cycle => 2,
            JoinGraph::Clique => 3,
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(JoinGraph::Chain),
            1 => Ok(JoinGraph::Star),
            2 => Ok(JoinGraph::Cycle),
            3 => Ok(JoinGraph::Clique),
            tag => Err(DecodeError::BadTag {
                tag,
                ty: "JoinGraph",
            }),
        }
    }
}

impl Wire for Query {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.catalog.len());
        for (_, s) in self.catalog.iter() {
            s.encode(enc);
        }
        self.predicates.encode(enc);
        self.graph.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = dec.get_len()?;
        let mut stats = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            stats.push(TableStats::decode(dec)?);
        }
        Ok(Query {
            catalog: Catalog::from_stats(stats),
            predicates: Vec::<Predicate>::decode(dec)?,
            graph: JoinGraph::decode(dec)?,
        })
    }
}

impl Wire for CostVector {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.time);
        enc.put_f64(self.buffer);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(CostVector {
            time: dec.get_f64()?,
            buffer: dec.get_f64()?,
        })
    }
}

impl Wire for Order {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.to_code());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Order::from_code(dec.get_u8()?))
    }
}

impl Wire for ScanOp {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            ScanOp::Full => 0,
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(ScanOp::Full),
            tag => Err(DecodeError::BadTag { tag, ty: "ScanOp" }),
        }
    }
}

impl Wire for JoinOp {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            JoinOp::NestedLoop => 0,
            JoinOp::Hash => 1,
            JoinOp::SortMerge => 2,
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(JoinOp::NestedLoop),
            1 => Ok(JoinOp::Hash),
            2 => Ok(JoinOp::SortMerge),
            tag => Err(DecodeError::BadTag { tag, ty: "JoinOp" }),
        }
    }
}

impl Wire for PlanSpace {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            PlanSpace::Linear => 0,
            PlanSpace::Bushy => 1,
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(PlanSpace::Linear),
            1 => Ok(PlanSpace::Bushy),
            tag => Err(DecodeError::BadTag {
                tag,
                ty: "PlanSpace",
            }),
        }
    }
}

impl Wire for Objective {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Objective::Single => enc.put_u8(0),
            Objective::Multi { alpha } => {
                enc.put_u8(1);
                enc.put_f64(*alpha);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(Objective::Single),
            1 => Ok(Objective::Multi {
                alpha: dec.get_f64()?,
            }),
            tag => Err(DecodeError::BadTag {
                tag,
                ty: "Objective",
            }),
        }
    }
}

impl Wire for Plan {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Plan::Scan {
                table,
                op,
                cost,
                cardinality,
            } => {
                enc.put_u8(0);
                enc.put_u8(*table);
                op.encode(enc);
                cost.encode(enc);
                enc.put_f64(*cardinality);
            }
            Plan::Join {
                op,
                left,
                right,
                cost,
                cardinality,
                order,
            } => {
                enc.put_u8(1);
                op.encode(enc);
                cost.encode(enc);
                enc.put_f64(*cardinality);
                order.encode(enc);
                left.encode(enc);
                right.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(Plan::Scan {
                table: dec.get_u8()?,
                op: ScanOp::decode(dec)?,
                cost: CostVector::decode(dec)?,
                cardinality: dec.get_f64()?,
            }),
            1 => Ok(Plan::Join {
                op: JoinOp::decode(dec)?,
                cost: CostVector::decode(dec)?,
                cardinality: dec.get_f64()?,
                order: Order::decode(dec)?,
                left: Box::new(Plan::decode(dec)?),
                right: Box::new(Plan::decode(dec)?),
            }),
            tag => Err(DecodeError::BadTag { tag, ty: "Plan" }),
        }
    }
}

impl Wire for PlanNode {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            PlanNode::Scan { table, op } => {
                enc.put_u8(0);
                enc.put_u8(*table);
                op.encode(enc);
            }
            PlanNode::Join {
                op,
                left,
                left_idx,
                right,
                right_idx,
            } => {
                enc.put_u8(1);
                op.encode(enc);
                left.encode(enc);
                enc.put_u32(*left_idx);
                right.encode(enc);
                enc.put_u32(*right_idx);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(PlanNode::Scan {
                table: dec.get_u8()?,
                op: ScanOp::decode(dec)?,
            }),
            1 => Ok(PlanNode::Join {
                op: JoinOp::decode(dec)?,
                left: TableSet::decode(dec)?,
                left_idx: dec.get_u32()?,
                right: TableSet::decode(dec)?,
                right_idx: dec.get_u32()?,
            }),
            tag => Err(DecodeError::BadTag {
                tag,
                ty: "PlanNode",
            }),
        }
    }
}

impl Wire for PlanEntry {
    fn encode(&self, enc: &mut Encoder) {
        self.cost.encode(enc);
        self.order.encode(enc);
        self.node.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(PlanEntry {
            cost: CostVector::decode(dec)?,
            order: Order::decode(dec)?,
            node: PlanNode::decode(dec)?,
        })
    }
}

impl Wire for WorkerStats {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.stored_sets);
        enc.put_u64(self.total_entries);
        enc.put_u64(self.splits_tried);
        enc.put_u64(self.plans_generated);
        enc.put_u64(self.optimize_micros);
        enc.put_u64(self.threads_used);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(WorkerStats {
            stored_sets: dec.get_u64()?,
            total_entries: dec.get_u64()?,
            splits_tried: dec.get_u64()?,
            plans_generated: dec.get_u64()?,
            optimize_micros: dec.get_u64()?,
            threads_used: dec.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use mpq_model::{WorkloadConfig, WorkloadGenerator};

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&42u64);
        roundtrip(&3.25f64);
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&Vec::<u64>::new());
    }

    #[test]
    fn model_types_roundtrip() {
        roundtrip(&TableSet::from_tables([0, 5, 63]));
        roundtrip(&TableStats {
            cardinality: 123.0,
            tuple_bytes: 99.0,
            join_domain: 7.0,
        });
        roundtrip(&Predicate {
            left: 3,
            right: 9,
            selectivity: 0.015625,
        });
        for g in JoinGraph::ALL {
            roundtrip(&g);
        }
    }

    #[test]
    fn query_roundtrip() {
        let q = WorkloadGenerator::new(WorkloadConfig::paper_default(12), 5).next_query();
        roundtrip(&q);
    }

    #[test]
    fn cost_types_roundtrip() {
        roundtrip(&CostVector::new(1.5, 2.5));
        roundtrip(&Order::None);
        roundtrip(&Order::OnAttribute(17));
        roundtrip(&ScanOp::Full);
        for op in mpq_cost::JOIN_OPS {
            roundtrip(&op);
        }
        roundtrip(&PlanSpace::Linear);
        roundtrip(&PlanSpace::Bushy);
        roundtrip(&Objective::Single);
        roundtrip(&Objective::Multi { alpha: 10.0 });
    }

    #[test]
    fn plan_roundtrip() {
        let q = WorkloadGenerator::new(WorkloadConfig::paper_default(6), 8).next_query();
        let out = mpq_dp::optimize_serial(&q, PlanSpace::Bushy, Objective::Single);
        roundtrip(&out.plans[0]);
    }

    #[test]
    fn entry_roundtrip() {
        let e = PlanEntry::join(
            JoinOp::SortMerge,
            TableSet::from_tables([0, 1]),
            7,
            TableSet::singleton(2),
            0,
            CostVector::new(5.0, 6.0),
            Order::OnAttribute(1),
        );
        roundtrip(&e);
        roundtrip(&WorkerStats {
            stored_sets: 1,
            total_entries: 2,
            splits_tried: 3,
            plans_generated: 4,
            optimize_micros: 5,
            threads_used: 6,
        });
    }

    #[test]
    fn query_id_roundtrip() {
        roundtrip(&QueryId(0));
        roundtrip(&QueryId(u64::MAX));
    }

    #[test]
    fn progress_roundtrip_and_fixed_size() {
        let p = Progress {
            first_partition: 5,
            completed: 2,
            partition_count: 8,
        };
        roundtrip(&p);
        assert_eq!(p.to_bytes().len(), 24, "progress reports are O(1) bytes");
        for cut in [0usize, 1, 8, 23] {
            assert!(Progress::from_bytes(&p.to_bytes()[..cut]).is_err());
        }
    }

    #[test]
    fn session_envelope_frames_and_unframes() {
        let framed = SessionEnvelope::frame(QueryId(7), b"payload");
        assert_eq!(framed.len(), 8 + 7, "8-byte id prefix plus payload");
        let env = SessionEnvelope::unframe(&framed).expect("well-formed frame");
        assert_eq!(env.query, QueryId(7));
        assert_eq!(&env.payload[..], b"payload");
        // An empty payload still frames (pure control messages).
        let empty = SessionEnvelope::frame(QueryId(1), b"");
        assert_eq!(SessionEnvelope::unframe(&empty).unwrap().payload.len(), 0);
        // Anything shorter than the id prefix is truncated, not a panic.
        assert!(matches!(
            SessionEnvelope::unframe(&framed[..5]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn truncated_input_errors() {
        let q = WorkloadGenerator::new(WorkloadConfig::paper_default(4), 1).next_query();
        let bytes = q.to_bytes();
        for cut in [0usize, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(Query::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_errors() {
        assert!(matches!(
            JoinGraph::from_bytes(&[9]),
            Err(DecodeError::BadTag {
                tag: 9,
                ty: "JoinGraph"
            })
        ));
        assert!(JoinOp::from_bytes(&[7]).is_err());
        assert!(Plan::from_bytes(&[2]).is_err());
    }

    /// Regression (ISSUE 7 satellite): `Predicate` table indices used to
    /// be truncated with `as u8`, so index 256 round-tripped as 0. Now an
    /// out-of-range index is a typed error on both sides of the wire.
    #[test]
    fn predicate_out_of_range_index_is_typed_not_truncated() {
        let bad = Predicate {
            left: 256, // would have truncated to 0
            right: 1,
            selectivity: 0.5,
        };
        // Encode side: the boundary API reports the exact offending index.
        assert_eq!(
            bad.try_to_bytes(),
            Err(EncodeError::TableIndexOutOfRange { index: 256 })
        );
        // Infallible side: the sentinel bytes must not decode to a
        // different (corrupted) predicate — decode rejects them typed.
        assert!(matches!(
            Predicate::from_bytes(&bad.to_bytes()),
            Err(DecodeError::IndexOutOfRange {
                index: 0xFF,
                ty: "Predicate"
            })
        ));
        // Every index the bitset can actually hold still round-trips,
        // including the boundary value 63.
        for index in [0usize, 1, 62, 63] {
            let ok = Predicate {
                left: index,
                right: 63 - index,
                selectivity: 0.25,
            };
            let bytes = ok.try_to_bytes().expect("valid indices encode");
            assert_eq!(Predicate::from_bytes(&bytes).expect("decode"), ok);
        }
        // First out-of-range value: 64 (= TableSet::MAX_TABLES) on the
        // wire is rejected even though it fits in a byte.
        let boundary = Predicate {
            left: TableSet::MAX_TABLES,
            right: 0,
            selectivity: 0.5,
        };
        assert_eq!(
            boundary.try_to_bytes(),
            Err(EncodeError::TableIndexOutOfRange { index: 64 })
        );
        let mut enc = Encoder::new();
        enc.put_u8(64);
        enc.put_u8(0);
        enc.put_f64(0.5);
        assert!(matches!(
            Predicate::from_bytes(&enc.finish()),
            Err(DecodeError::IndexOutOfRange { index: 64, .. })
        ));
    }

    /// The poison latch is sticky (first error wins) and does not leak
    /// across encoders.
    #[test]
    fn encoder_poison_is_sticky_and_scoped() {
        let mut enc = Encoder::new();
        enc.put_table_index(70);
        enc.put_table_index(99);
        assert_eq!(
            enc.error(),
            Some(EncodeError::TableIndexOutOfRange { index: 70 })
        );
        let clean = Encoder::new();
        assert_eq!(clean.error(), None);
        // A query carrying one bad predicate fails as a whole.
        let q = WorkloadGenerator::new(WorkloadConfig::paper_default(5), 3).next_query();
        let mut broken = q.clone();
        broken.predicates[0].left = 1 << 20;
        assert!(q.try_to_bytes().is_ok());
        assert_eq!(
            broken.try_to_bytes(),
            Err(EncodeError::TableIndexOutOfRange { index: 1 << 20 })
        );
    }

    #[test]
    fn length_overflow_rejected() {
        // A Vec<u64> with a bogus huge length prefix.
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX);
        let bytes = enc.finish();
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(DecodeError::LengthOverflow(_))
        ));
    }

    #[test]
    fn query_size_linear_in_tables() {
        // b_q must grow linearly in n (Theorem 1's premise).
        let q8 = WorkloadGenerator::new(WorkloadConfig::paper_default(8), 2).next_query();
        let q16 = WorkloadGenerator::new(WorkloadConfig::paper_default(16), 2).next_query();
        let b8 = q8.to_bytes().len();
        let b16 = q16.to_bytes().len();
        assert!(b16 < 3 * b8, "encoding must stay linear: {b8} -> {b16}");
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::Truncated {
            needed: 8,
            available: 3,
        };
        assert!(e.to_string().contains("truncated"));
        let e = DecodeError::BadTag { tag: 5, ty: "X" };
        assert!(e.to_string().contains("tag 5"));
        let e = DecodeError::IndexOutOfRange {
            index: 200,
            ty: "Predicate",
        };
        assert!(e.to_string().contains("index 200"));
        let e = EncodeError::TableIndexOutOfRange { index: 300 };
        assert!(e.to_string().contains("index 300"));
    }
}
