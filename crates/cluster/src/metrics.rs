//! Network accounting.
//!
//! Every byte crossing the simulated network is counted here; the totals
//! are the "Network (bytes)" series of Figures 1, 2, 4 and 5. Counters are
//! atomic because workers send concurrently.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe network counters for one cluster.
#[derive(Debug, Default)]
pub struct NetworkMetrics {
    master_to_worker_bytes: AtomicU64,
    worker_to_master_bytes: AtomicU64,
    messages: AtomicU64,
    rounds: AtomicU64,
}

impl NetworkMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a master → worker message of `bytes` bytes.
    pub fn record_to_worker(&self, bytes: u64) {
        self.master_to_worker_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker → master message of `bytes` bytes.
    pub fn record_to_master(&self, bytes: u64) {
        self.worker_to_master_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the start of a new coordination round (the MPQ algorithm has
    /// exactly one; SMA has one per join-result cardinality).
    pub fn record_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.master_to_worker_bytes.store(0, Ordering::Relaxed);
        self.worker_to_master_bytes.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.rounds.store(0, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> NetworkSnapshot {
        NetworkSnapshot {
            master_to_worker_bytes: self.master_to_worker_bytes.load(Ordering::Relaxed),
            worker_to_master_bytes: self.worker_to_master_bytes.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the [`NetworkMetrics`] counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkSnapshot {
    /// Bytes sent from the master to workers.
    pub master_to_worker_bytes: u64,
    /// Bytes sent from workers to the master.
    pub worker_to_master_bytes: u64,
    /// Total number of messages.
    pub messages: u64,
    /// Number of coordination rounds.
    pub rounds: u64,
}

impl NetworkSnapshot {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.master_to_worker_bytes + self.worker_to_master_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = NetworkMetrics::new();
        m.record_to_worker(100);
        m.record_to_worker(50);
        m.record_to_master(7);
        m.record_round();
        let s = m.snapshot();
        assert_eq!(s.master_to_worker_bytes, 150);
        assert_eq!(s.worker_to_master_bytes, 7);
        assert_eq!(s.total_bytes(), 157);
        assert_eq!(s.messages, 3);
        assert_eq!(s.rounds, 1);
    }

    #[test]
    fn reset_zeroes() {
        let m = NetworkMetrics::new();
        m.record_to_worker(1);
        m.reset();
        assert_eq!(m.snapshot(), NetworkSnapshot::default());
    }

    #[test]
    fn concurrent_updates() {
        use std::sync::Arc;
        let m = Arc::new(NetworkMetrics::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record_to_master(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().worker_to_master_bytes, 8000);
    }
}
