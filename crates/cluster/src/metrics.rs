//! Network and fault accounting.
//!
//! Every byte crossing the simulated network is counted here; the totals
//! are the "Network (bytes)" series of Figures 1, 2, 4 and 5. Counters are
//! atomic because workers send concurrently.
//!
//! Beyond the byte counters, the metrics record every injected fault
//! (crashes, dropped replies, stragglers) and every master-side recovery
//! action (retries, timeouts, duplicate replies), globally and per worker,
//! so chaos tests can assert that no fault goes unaccounted.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe network counters for one cluster.
#[derive(Debug, Default)]
pub struct NetworkMetrics {
    master_to_worker_bytes: AtomicU64,
    worker_to_master_bytes: AtomicU64,
    messages: AtomicU64,
    rounds: AtomicU64,
    // Fault-injection counters (recorded worker-side at injection).
    crashes: AtomicU64,
    drops: AtomicU64,
    straggles: AtomicU64,
    // Recovery counters (recorded master-side).
    retries: AtomicU64,
    timeouts: AtomicU64,
    duplicate_replies: AtomicU64,
    // Straggler-adaptive work redistribution counters (master-side):
    // steal events (one straggler's unstarted remainder split and
    // re-issued) and worker progress reports received.
    steals: AtomicU64,
    progress_reports: AtomicU64,
    // Cross-query memo-cache counters (recorded where the cache lives:
    // worker-side for shard-local caches, master-side for service caches).
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_bytes_saved: AtomicU64,
    /// Per-worker counters; empty when the cluster size is unknown.
    per_worker: Vec<PerWorkerCounters>,
}

#[derive(Debug, Default)]
struct PerWorkerCounters {
    replies: AtomicU64,
    reply_bytes: AtomicU64,
    failures: AtomicU64,
    retries: AtomicU64,
}

impl NetworkMetrics {
    /// Creates zeroed counters without per-worker resolution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates zeroed counters with per-worker counters for `num_workers`
    /// workers.
    pub fn with_workers(num_workers: usize) -> Self {
        NetworkMetrics {
            per_worker: (0..num_workers)
                .map(|_| PerWorkerCounters::default())
                .collect(),
            ..NetworkMetrics::default()
        }
    }

    /// Records a master → worker message of `bytes` bytes.
    pub fn record_to_worker(&self, bytes: u64) {
        self.master_to_worker_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker → master message of `bytes` bytes without
    /// attributing it to a worker.
    pub fn record_to_master(&self, bytes: u64) {
        self.worker_to_master_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a delivered reply from `worker` of `bytes` bytes.
    pub fn record_reply(&self, worker: usize, bytes: u64) {
        self.record_to_master(bytes);
        if let Some(pw) = self.per_worker.get(worker) {
            pw.replies.fetch_add(1, Ordering::Relaxed);
            pw.reply_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Records a crash injected at `worker`.
    pub fn record_crash(&self, worker: usize) {
        self.crashes.fetch_add(1, Ordering::Relaxed);
        self.record_failure(worker);
    }

    /// Records a dropped reply injected at `worker`.
    pub fn record_drop(&self, worker: usize) {
        self.drops.fetch_add(1, Ordering::Relaxed);
        self.record_failure(worker);
    }

    /// Records a straggling reply injected at `worker`.
    pub fn record_straggle(&self, worker: usize) {
        self.straggles.fetch_add(1, Ordering::Relaxed);
        self.record_failure(worker);
    }

    fn record_failure(&self, worker: usize) {
        if let Some(pw) = self.per_worker.get(worker) {
            pw.failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a master-side re-issue of a task, targeted at `worker`.
    pub fn record_retry(&self, worker: usize) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        if let Some(pw) = self.per_worker.get(worker) {
            pw.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a master-side receive timeout.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a reply discarded as a duplicate of an already-completed
    /// task (speculative re-execution overlap).
    pub fn record_duplicate(&self) {
        self.duplicate_replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one steal event: a straggler's unstarted remainder was
    /// split and re-issued to idle workers.
    pub fn record_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker progress report received by the master.
    pub fn record_progress_report(&self) {
        self.progress_reports.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the start of a new coordination round (the MPQ algorithm has
    /// exactly one; SMA has one per join-result cardinality).
    pub fn record_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cross-query cache hit that served `bytes_saved`
    /// approximate bytes of finished memo results without recomputation.
    pub fn record_cache_hit(&self, bytes_saved: u64) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.cache_bytes_saved
            .fetch_add(bytes_saved, Ordering::Relaxed);
    }

    /// Records a cross-query cache miss (the subproblem was computed).
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.master_to_worker_bytes.store(0, Ordering::Relaxed);
        self.worker_to_master_bytes.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.rounds.store(0, Ordering::Relaxed);
        self.crashes.store(0, Ordering::Relaxed);
        self.drops.store(0, Ordering::Relaxed);
        self.straggles.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.duplicate_replies.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.progress_reports.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_bytes_saved.store(0, Ordering::Relaxed);
        for pw in &self.per_worker {
            pw.replies.store(0, Ordering::Relaxed);
            pw.reply_bytes.store(0, Ordering::Relaxed);
            pw.failures.store(0, Ordering::Relaxed);
            pw.retries.store(0, Ordering::Relaxed);
        }
    }

    /// Takes a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> NetworkSnapshot {
        NetworkSnapshot {
            master_to_worker_bytes: self.master_to_worker_bytes.load(Ordering::Relaxed),
            worker_to_master_bytes: self.worker_to_master_bytes.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            straggles: self.straggles.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            duplicate_replies: self.duplicate_replies.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            progress_reports: self.progress_reports.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_bytes_saved: self.cache_bytes_saved.load(Ordering::Relaxed),
        }
    }

    /// Snapshots the per-worker counters (empty unless the metrics were
    /// built with [`NetworkMetrics::with_workers`]).
    pub fn worker_counters(&self) -> Vec<WorkerCounters> {
        self.per_worker
            .iter()
            .map(|pw| WorkerCounters {
                replies: pw.replies.load(Ordering::Relaxed),
                reply_bytes: pw.reply_bytes.load(Ordering::Relaxed),
                failures: pw.failures.load(Ordering::Relaxed),
                retries: pw.retries.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// A point-in-time copy of the [`NetworkMetrics`] counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkSnapshot {
    /// Bytes sent from the master to workers.
    pub master_to_worker_bytes: u64,
    /// Bytes sent from workers to the master.
    pub worker_to_master_bytes: u64,
    /// Total number of messages.
    pub messages: u64,
    /// Number of coordination rounds.
    pub rounds: u64,
    /// Injected worker crashes (before or after replying).
    pub crashes: u64,
    /// Injected reply drops.
    pub drops: u64,
    /// Injected straggling replies.
    pub straggles: u64,
    /// Master-side task re-issues.
    pub retries: u64,
    /// Master-side receive timeouts.
    pub timeouts: u64,
    /// Replies discarded as duplicates of completed tasks.
    pub duplicate_replies: u64,
    /// Steal events: a straggler's unstarted remainder split and
    /// re-issued to idle workers.
    pub steals: u64,
    /// Worker progress reports received by the master.
    pub progress_reports: u64,
    /// Cross-query memo-cache hits (shard-local worker caches plus any
    /// master-side service cache sharing these metrics).
    pub cache_hits: u64,
    /// Cross-query memo-cache misses.
    pub cache_misses: u64,
    /// Approximate bytes of finished memo results served from caches
    /// instead of being recomputed.
    pub cache_bytes_saved: u64,
}

impl NetworkSnapshot {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.master_to_worker_bytes + self.worker_to_master_bytes
    }

    /// Total number of injected faults of any kind.
    pub fn faults_injected(&self) -> u64 {
        self.crashes + self.drops + self.straggles
    }
}

/// A point-in-time copy of one worker's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Replies this worker delivered to the master.
    pub replies: u64,
    /// Bytes of those replies.
    pub reply_bytes: u64,
    /// Faults injected at this worker (crashes + drops + straggles).
    pub failures: u64,
    /// Task re-issues the master directed at this worker.
    pub retries: u64,
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = NetworkMetrics::new();
        m.record_to_worker(100);
        m.record_to_worker(50);
        m.record_to_master(7);
        m.record_round();
        let s = m.snapshot();
        assert_eq!(s.master_to_worker_bytes, 150);
        assert_eq!(s.worker_to_master_bytes, 7);
        assert_eq!(s.total_bytes(), 157);
        assert_eq!(s.messages, 3);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.faults_injected(), 0);
    }

    #[test]
    fn reset_zeroes() {
        let m = NetworkMetrics::with_workers(2);
        m.record_to_worker(1);
        m.record_reply(1, 9);
        m.record_crash(0);
        m.record_retry(1);
        m.record_timeout();
        m.record_duplicate();
        m.reset();
        assert_eq!(m.snapshot(), NetworkSnapshot::default());
        assert!(m
            .worker_counters()
            .iter()
            .all(|w| *w == WorkerCounters::default()));
    }

    #[test]
    fn per_worker_attribution() {
        let m = NetworkMetrics::with_workers(3);
        m.record_reply(0, 10);
        m.record_reply(0, 20);
        m.record_reply(2, 5);
        m.record_crash(1);
        m.record_drop(2);
        m.record_straggle(2);
        m.record_retry(0);
        let w = m.worker_counters();
        assert_eq!(w[0].replies, 2);
        assert_eq!(w[0].reply_bytes, 30);
        assert_eq!(w[0].retries, 1);
        assert_eq!(w[1].failures, 1);
        assert_eq!(w[2].failures, 2);
        let s = m.snapshot();
        assert_eq!(s.worker_to_master_bytes, 35);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.drops, 1);
        assert_eq!(s.straggles, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.faults_injected(), 3);
    }

    #[test]
    fn cache_counters_accumulate_and_reset() {
        let m = NetworkMetrics::new();
        m.record_cache_hit(100);
        m.record_cache_hit(50);
        m.record_cache_miss();
        let s = m.snapshot();
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_bytes_saved, 150);
        m.reset();
        assert_eq!(m.snapshot(), NetworkSnapshot::default());
    }

    #[test]
    fn steal_and_progress_counters_accumulate_and_reset() {
        let m = NetworkMetrics::new();
        m.record_steal();
        m.record_progress_report();
        m.record_progress_report();
        let s = m.snapshot();
        assert_eq!(s.steals, 1);
        assert_eq!(s.progress_reports, 2);
        m.reset();
        assert_eq!(m.snapshot(), NetworkSnapshot::default());
    }

    #[test]
    fn out_of_range_worker_is_tolerated() {
        // Metrics without per-worker resolution must not panic on
        // attributed records.
        let m = NetworkMetrics::new();
        m.record_reply(7, 3);
        m.record_crash(7);
        assert_eq!(m.snapshot().crashes, 1);
        assert!(m.worker_counters().is_empty());
    }

    #[test]
    fn concurrent_updates() {
        use std::sync::Arc;
        let m = Arc::new(NetworkMetrics::with_workers(1));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record_reply(0, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().worker_to_master_bytes, 8000);
        assert_eq!(m.worker_counters()[0].replies, 8000);
    }
}
