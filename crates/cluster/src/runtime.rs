//! The threaded node runtime.
//!
//! A [`Cluster`] owns one OS thread per worker node and is **long-lived**:
//! it serves an unbounded stream of optimization sessions, each identified
//! by a [`QueryId`]. Workers hold fully private state (their
//! [`WorkerLogic`] value moves into the thread) and interact with the
//! master exclusively through serialized, byte-counted, latency-charged
//! messages, every one framed in a [`SessionEnvelope`] tagging its owning
//! session. The master-side protocol runs on the caller's thread via
//! [`Cluster::send`] / [`Cluster::recv`] / [`Cluster::recv_for`]: `recv`
//! surfaces the session tag, and `recv_for` demultiplexes — replies owned
//! by other sessions are buffered and delivered when their owner asks.
//!
//! Faults can be injected deterministically via a
//! [`FaultPlan`] passed to
//! [`Cluster::spawn_with_faults`]: workers then crash, drop replies or
//! straggle exactly as the resolved [`FaultSchedule`](crate::FaultSchedule)
//! dictates. The master observes faults only the way a real master would —
//! through send failures, receive timeouts and [`Cluster::is_worker_alive`]
//! — and every injected fault is tallied in the [`NetworkMetrics`].

use crate::codec::{QueryId, SessionEnvelope};
use crate::fault::{FaultAction, FaultPlan, WorkerFaults};
use crate::latency::LatencyModel;
use crate::metrics::NetworkMetrics;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Mints a process-wide unique service-instance identity. Session
/// services stamp it into the handles they mint, so a handle presented
/// to the wrong service instance is detected even when the raw session
/// ids collide (every service numbers its sessions from 0).
pub fn mint_service_instance() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Drop-queue shared between a session service and its query handles:
/// a handle pushes its session id here when dropped unredeemed, and the
/// service drains the queue on its next scheduler entry to free the
/// abandoned session's state. Ids of already-redeemed handles are pushed
/// too — services treat unknown ids as no-ops, so that is harmless.
#[derive(Clone, Debug, Default)]
pub struct AbandonedList(Arc<Mutex<Vec<u64>>>);

impl AbandonedList {
    /// An empty list.
    pub fn new() -> AbandonedList {
        AbandonedList::default()
    }

    /// Queues one abandoned session id. Called from `Drop` impls: a
    /// poisoned lock means the service side is gone, so there is nothing
    /// left to free and the push is silently skipped.
    pub fn push(&self, id: u64) {
        if let Ok(mut list) = self.0.lock() {
            list.push(id);
        }
    }

    /// Takes every queued id, leaving the list empty. The returned order
    /// is push order, which depends on handle-drop timing — use
    /// [`AbandonedList::drain_ordered`] when the reaping order must be
    /// reproducible.
    pub fn drain(&self) -> Vec<u64> {
        match self.0.lock() {
            Ok(mut list) => std::mem::take(&mut *list),
            Err(_) => Vec::new(),
        }
    }

    /// Takes every queued id in **canonical order** (ascending session
    /// id, duplicates preserved). Push order depends on when each handle
    /// happened to be dropped — an accident of caller timing — so
    /// services reap in this order instead, making the drop lifecycle
    /// replayable under the schedule-space model checker.
    pub fn drain_ordered(&self) -> Vec<u64> {
        let mut ids = self.drain();
        ids.sort_unstable();
        ids
    }

    /// Takes every queued id in a **seeded deterministic order**: the
    /// canonical ascending order permuted by a splitmix-driven
    /// Fisher–Yates shuffle of `seed`. The model checker uses this to
    /// *explore* reaping orders reproducibly; `seed == 0` is the identity
    /// permutation (canonical order).
    pub fn drain_seeded(&self, seed: u64) -> Vec<u64> {
        let mut ids = self.drain_ordered();
        if seed == 0 || ids.len() < 2 {
            return ids;
        }
        let mut state = seed;
        let mut next = move || {
            // splitmix64: full-period, dependency-free.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..ids.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        ids
    }
}

/// What a worker wants to happen after handling a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep the worker alive and wait for the next message.
    Continue,
    /// Terminate the worker thread.
    Shutdown,
}

/// Typed master-side cluster failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// The OS refused to spawn a worker thread; the cluster never came up.
    SpawnFailed {
        /// The worker whose thread could not be created.
        worker: usize,
    },
    /// A message could not be delivered because the worker's thread has
    /// terminated (crashed or shut down).
    WorkerLost {
        /// The dead worker's id.
        worker: usize,
    },
    /// Every worker has terminated and no replies remain.
    AllWorkersLost,
    /// No reply arrived within the timeout.
    Timeout {
        /// How long the master waited.
        waited: Duration,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::SpawnFailed { worker } => {
                write!(f, "could not spawn the thread for worker {worker}")
            }
            ClusterError::WorkerLost { worker } => {
                write!(f, "worker {worker} is no longer alive")
            }
            ClusterError::AllWorkersLost => write!(f, "every worker has terminated"),
            ClusterError::Timeout { waited } => {
                write!(f, "no worker reply within {waited:?}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Failure of a batched receive, carrying the replies that had already
/// arrived so the caller can still use (or account for) the partial batch.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchError {
    /// Replies received before the failure, in arrival order.
    pub received: Vec<(usize, QueryId, Bytes)>,
    /// The failure that interrupted the batch.
    pub error: ClusterError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} of the batch's replies arrived",
            self.error,
            self.received.len()
        )
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The fault applied to replies of the message currently being handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReplyFault {
    None,
    Drop,
    Delay(Duration),
}

/// Where a worker's replies go: the in-process simulated network of a
/// [`Cluster`], or a real byte stream back to a remote master (see
/// [`crate::transport`]).
pub(crate) enum ReplySink {
    /// In-process channel of the simulated [`Cluster`]; the transfer
    /// delay is computed from the latency model and charged master-side.
    Channel {
        to_master: Sender<(usize, Envelope)>,
        latency: LatencyModel,
    },
    /// A length-prefixed frame stream over a real socket; the wire itself
    /// provides the latency, so none is simulated.
    Stream(Box<dyn std::io::Write + Send>),
}

/// Worker-side handle for replying to the master.
pub struct WorkerCtx {
    worker_id: usize,
    sink: ReplySink,
    metrics: Arc<NetworkMetrics>,
    reply_fault: ReplyFault,
    current_query: QueryId,
}

impl WorkerCtx {
    /// A context whose replies go down a real byte stream instead of the
    /// simulated network — the worker side of [`crate::transport`]. The
    /// stream provides its own latency, so none is simulated, and fault
    /// injection (a [`FaultPlan`] concern) does not apply: real transports
    /// get real faults.
    ///
    /// Public so alternative transports outside this crate — notably the
    /// schedule-space model checker, which runs worker logic inline and
    /// captures its frames in memory — can drive a [`WorkerLogic`]
    /// through the same context the socket transport uses.
    pub fn for_stream(
        worker_id: usize,
        metrics: Arc<NetworkMetrics>,
        writer: Box<dyn std::io::Write + Send>,
    ) -> WorkerCtx {
        WorkerCtx {
            worker_id,
            sink: ReplySink::Stream(writer),
            metrics,
            reply_fault: ReplyFault::None,
            current_query: QueryId(0),
        }
    }

    /// Re-tags the context with the session of the message about to be
    /// handled, so replies are framed correctly. Public for the same
    /// reason as [`WorkerCtx::for_stream`]: an external transport that
    /// dispatches messages to worker logic itself must tag the context
    /// before each [`WorkerLogic::on_message`] call.
    pub fn set_current_query(&mut self, query: QueryId) {
        self.current_query = query;
    }

    /// This worker's node id (0-based).
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// The session of the message currently being handled; replies are
    /// framed with it.
    pub fn query(&self) -> QueryId {
        self.current_query
    }

    /// The cluster-wide shared counters. Worker logic uses this to record
    /// events that are worker-side by nature — e.g. shard-local
    /// cross-query cache hits and misses — into the same ledger the
    /// master reads.
    pub fn metrics(&self) -> &NetworkMetrics {
        &self.metrics
    }

    /// Sends a serialized reply to the master, framed with the current
    /// message's [`QueryId`]. The framed size is counted and the transfer
    /// delay is charged on the master side.
    ///
    /// Under fault injection the reply may be silently dropped (the
    /// simulated network ate it) or delayed worker-side (straggler); both
    /// are tallied here, where a reply actually exists — a drop/straggle
    /// fault armed on a message that produces no reply is a no-op and is
    /// deliberately not counted.
    pub fn send_to_master(&mut self, payload: Bytes) {
        match self.reply_fault {
            ReplyFault::Drop => {
                self.metrics.record_drop(self.worker_id);
                return; // lost in the network
            }
            ReplyFault::Delay(d) => {
                self.metrics.record_straggle(self.worker_id);
                std::thread::sleep(d);
            }
            ReplyFault::None => {}
        }
        match &mut self.sink {
            ReplySink::Channel { to_master, latency } => {
                // Framed length: payload plus the 8-byte session-id header
                // (see [`SessionEnvelope`] for the canonical layout). The
                // header is carried pre-parsed through the in-process
                // channel — the way a real transport parses it once at the
                // socket — so the hot path pays no serialization copy,
                // while the byte counters and the latency model see the
                // full on-the-wire size.
                let framed_len = payload.len() + SessionEnvelope::HEADER_BYTES;
                self.metrics.record_reply(self.worker_id, framed_len as u64);
                let delay = latency.delay(framed_len, false);
                // The channel being closed means the master is gone
                // (cluster drop mid-protocol); the reply is moot then.
                let _ = to_master.send((
                    self.worker_id,
                    Envelope {
                        query: self.current_query,
                        payload,
                        delay,
                    },
                ));
            }
            ReplySink::Stream(writer) => {
                // Real socket: write the length-prefixed frame and count
                // the bytes that actually hit the wire. A write failure
                // means the master is gone; like the closed-channel case
                // above, the reply is moot then.
                let frame = crate::transport::frame_with_prefix(self.current_query, &payload);
                use std::io::Write;
                if writer
                    .write_all(&frame)
                    .and_then(|()| writer.flush())
                    .is_ok()
                {
                    self.metrics
                        .record_reply(self.worker_id, frame.len() as u64);
                }
            }
        }
    }
}

/// Per-node protocol logic, supplied by the algorithm crates.
///
/// The logic is **session-aware**: each message carries the [`QueryId`] of
/// the optimization session it belongs to, and one worker may hold private
/// state for many in-flight sessions at once (keyed by the id), serving an
/// unbounded stream of concurrent queries over its lifetime.
pub trait WorkerLogic: Send + 'static {
    /// Handles one message from the master, owned by session `query`.
    fn on_message(&mut self, query: QueryId, payload: Bytes, ctx: &mut WorkerCtx) -> Control;
}

/// Blanket implementation so simple protocols can be closures.
impl<F> WorkerLogic for F
where
    F: FnMut(QueryId, Bytes, &mut WorkerCtx) -> Control + Send + 'static,
{
    fn on_message(&mut self, query: QueryId, payload: Bytes, ctx: &mut WorkerCtx) -> Control {
        self(query, payload, ctx)
    }
}

/// Master-side parking lot for replies received on behalf of sessions
/// other than the one a session-routed receive asked for. A `Mutex`
/// (never contended — the master protocol is single-threaded) keeps the
/// receive methods on `&self`; a `BTreeMap` keeps untargeted draining
/// deterministic (lowest session id first). Shared by [`Cluster`], the
/// socket transport, and (via its public surface) external transports
/// such as the schedule-space model checker, so all demultiplex
/// identically.
#[derive(Default)]
pub struct ReplyPark(Mutex<BTreeMap<u64, VecDeque<(usize, Bytes)>>>);

impl ReplyPark {
    /// An empty park.
    pub fn new() -> ReplyPark {
        ReplyPark::default()
    }

    /// Parks one reply for session `query` until its owner asks.
    pub fn park(&self, query: QueryId, worker: usize, payload: Bytes) {
        // Recover from poisoning: the map holds plain owned data, so a
        // panicked holder cannot have left it logically inconsistent.
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .entry(query.0)
            .or_default()
            .push_back((worker, payload));
    }

    /// The oldest parked reply owned by `query`, if any.
    pub fn take(&self, query: QueryId) -> Option<(usize, Bytes)> {
        let mut parked = self
            .0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let queue = parked.get_mut(&query.0)?;
        let reply = queue.pop_front();
        if queue.is_empty() {
            parked.remove(&query.0);
        }
        reply
    }

    /// Visits every parked reply in deterministic order (ascending
    /// session id, FIFO within a session) without consuming anything.
    /// External transports — the schedule-space model checker — fold the
    /// park into a state fingerprint with this.
    pub fn for_each(&self, mut f: impl FnMut(QueryId, usize, &Bytes)) {
        let parked = self
            .0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for (&qid, queue) in parked.iter() {
            for (worker, payload) in queue {
                f(QueryId(qid), *worker, payload);
            }
        }
    }

    /// The oldest parked reply of the lowest-numbered session, if any.
    pub fn take_any(&self) -> Option<(usize, QueryId, Bytes)> {
        let mut parked = self
            .0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let (&qid, queue) = parked.iter_mut().next()?;
        let (worker, payload) = queue.pop_front()?;
        if queue.is_empty() {
            parked.remove(&qid);
        }
        Some((worker, QueryId(qid), payload))
    }
}

/// One message in flight on the simulated network: the session-id header
/// pre-parsed (see [`SessionEnvelope`] for the canonical byte layout —
/// byte counters and latency always charge the framed length, payload
/// plus header), the payload, and its transfer delay.
pub(crate) struct Envelope {
    query: QueryId,
    payload: Bytes,
    delay: Duration,
}

enum ToWorker {
    Message(Envelope),
    Shutdown,
}

/// A simulated shared-nothing cluster: `m` worker threads plus the
/// master-side API on the calling thread. One cluster is long-lived and
/// serves many concurrent sessions; see the module docs.
pub struct Cluster {
    to_workers: Vec<Sender<ToWorker>>,
    from_workers: Receiver<(usize, Envelope)>,
    handles: Vec<JoinHandle<()>>,
    metrics: Arc<NetworkMetrics>,
    latency: LatencyModel,
    /// Replies received on behalf of sessions other than the one a
    /// [`Cluster::recv_for`] caller asked for, parked until their owner
    /// asks — the demultiplexer that lets independent session drivers
    /// share one resident cluster.
    parked: ReplyPark,
}

impl Cluster {
    /// Spawns `num_workers` fault-free worker threads. `factory(i)` builds
    /// the logic value for worker `i`; it is moved into that worker's
    /// thread, so workers cannot share state.
    ///
    /// Fails with [`ClusterError::SpawnFailed`] if the OS refuses a
    /// thread; workers spawned up to that point are shut down and joined.
    pub fn spawn<L, F>(
        num_workers: usize,
        latency: LatencyModel,
        factory: F,
    ) -> Result<Cluster, ClusterError>
    where
        L: WorkerLogic,
        F: FnMut(usize) -> L,
    {
        Cluster::spawn_with_faults(num_workers, latency, &FaultPlan::NONE, factory)
    }

    /// Spawns `num_workers` worker threads with the given fault plan
    /// resolved into a deterministic schedule (same plan and worker count
    /// → same injected faults per message).
    ///
    /// Fails with [`ClusterError::SpawnFailed`] if the OS refuses a
    /// thread; workers spawned up to that point are shut down and joined.
    pub fn spawn_with_faults<L, F>(
        num_workers: usize,
        latency: LatencyModel,
        faults: &FaultPlan,
        mut factory: F,
    ) -> Result<Cluster, ClusterError>
    where
        L: WorkerLogic,
        F: FnMut(usize) -> L,
    {
        assert!(num_workers >= 1, "a cluster needs at least one worker");
        let schedule = faults.schedule(num_workers);
        let metrics = Arc::new(NetworkMetrics::with_workers(num_workers));
        let (master_tx, from_workers) = unbounded::<(usize, Envelope)>();
        let mut to_workers = Vec::with_capacity(num_workers);
        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(num_workers);
        for id in 0..num_workers {
            let (tx, rx) = unbounded::<ToWorker>();
            to_workers.push(tx);
            let mut logic = factory(id);
            let wf = schedule.worker(id);
            let mut ctx = WorkerCtx {
                worker_id: id,
                sink: ReplySink::Channel {
                    to_master: master_tx.clone(),
                    latency,
                },
                metrics: Arc::clone(&metrics),
                reply_fault: ReplyFault::None,
                current_query: QueryId(0),
            };
            let spawned = std::thread::Builder::new()
                .name(format!("mpq-worker-{id}"))
                .spawn(move || worker_loop(rx, &mut logic, &mut ctx, wf));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(_) => {
                    // Tear the partial cluster down before surfacing the
                    // typed error: no orphan threads.
                    for tx in &to_workers {
                        let _ = tx.send(ToWorker::Shutdown);
                    }
                    for h in handles.drain(..) {
                        let _ = h.join();
                    }
                    return Err(ClusterError::SpawnFailed { worker: id });
                }
            }
        }
        Ok(Cluster {
            to_workers,
            from_workers,
            handles,
            metrics,
            latency,
            parked: ReplyPark::new(),
        })
    }

    /// Number of worker nodes.
    pub fn num_workers(&self) -> usize {
        self.to_workers.len()
    }

    /// The shared network counters.
    pub fn metrics(&self) -> &NetworkMetrics {
        &self.metrics
    }

    /// Whether worker `id`'s thread is still running. This is the
    /// simulated analogue of a cluster manager's liveness probe: the
    /// master may consult it when deciding whether a missing reply means a
    /// straggler or a dead node.
    pub fn is_worker_alive(&self, id: usize) -> bool {
        !self.handles[id].is_finished()
    }

    /// Ids of workers whose threads have terminated.
    pub fn dead_workers(&self) -> Vec<usize> {
        (0..self.num_workers())
            .filter(|&id| !self.is_worker_alive(id))
            .collect()
    }

    /// Sends a serialized message to worker `id` on behalf of session
    /// `query` (the id is framed onto the wire and counted).
    /// `is_assignment` marks task-assignment messages, which carry extra
    /// launch overhead in the latency model.
    ///
    /// Returns [`ClusterError::WorkerLost`] if the worker has terminated.
    ///
    /// # Panics
    /// Panics if `id` is out of range (a protocol bug, not a fault).
    pub fn send(
        &self,
        id: usize,
        query: QueryId,
        payload: Bytes,
        is_assignment: bool,
    ) -> Result<(), ClusterError> {
        let framed_len = payload.len() + SessionEnvelope::HEADER_BYTES;
        let delay = self.latency.delay(framed_len, is_assignment);
        self.to_workers[id]
            .send(ToWorker::Message(Envelope {
                query,
                payload,
                delay,
            }))
            .map_err(|_| ClusterError::WorkerLost { worker: id })?;
        self.metrics.record_to_worker(framed_len as u64);
        Ok(())
    }

    /// Sends the same payload to every worker on behalf of session
    /// `query` (counted once per worker — a cluster switch still delivers
    /// `m` copies). Fails on the first dead worker.
    pub fn broadcast(
        &self,
        query: QueryId,
        payload: &Bytes,
        is_assignment: bool,
    ) -> Result<(), ClusterError> {
        for id in 0..self.num_workers() {
            self.send(id, query, payload.clone(), is_assignment)?;
        }
        Ok(())
    }

    /// Receives the next worker reply for **any** session, blocking. The
    /// reply's transfer delay is charged here (master side). Replies
    /// parked by [`Cluster::recv_for`] are drained first.
    ///
    /// Returns [`ClusterError::AllWorkersLost`] if every worker has
    /// terminated and no replies remain.
    pub fn recv(&self) -> Result<(usize, QueryId, Bytes), ClusterError> {
        if let Some(reply) = self.parked.take_any() {
            return Ok(reply);
        }
        let (id, env) = self
            .from_workers
            .recv()
            .map_err(|_| ClusterError::AllWorkersLost)?;
        Ok(self.open(id, env))
    }

    /// Receives the next worker reply for any session, waiting at most
    /// `timeout`. The reply's transfer delay is charged here (master
    /// side).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(usize, QueryId, Bytes), ClusterError> {
        if let Some(reply) = self.parked.take_any() {
            return Ok(reply);
        }
        match self.from_workers.recv_timeout(timeout) {
            Ok((id, env)) => Ok(self.open(id, env)),
            Err(RecvTimeoutError::Timeout) => Err(ClusterError::Timeout { waited: timeout }),
            Err(RecvTimeoutError::Disconnected) => Err(ClusterError::AllWorkersLost),
        }
    }

    /// Non-blocking receive: the next reply for any session if one is
    /// already waiting, else [`ClusterError::Timeout`] with a zero wait.
    pub fn try_recv(&self) -> Result<(usize, QueryId, Bytes), ClusterError> {
        if let Some(reply) = self.parked.take_any() {
            return Ok(reply);
        }
        use std::sync::mpsc::TryRecvError;
        match self.from_workers.try_recv() {
            Ok((id, env)) => Ok(self.open(id, env)),
            Err(TryRecvError::Empty) => Err(ClusterError::Timeout {
                waited: Duration::ZERO,
            }),
            Err(TryRecvError::Disconnected) => Err(ClusterError::AllWorkersLost),
        }
    }

    /// Session-routed receive: blocks until the next reply **owned by
    /// `query`** arrives. Replies belonging to other sessions are parked
    /// and handed to their owners on their next `recv_for` / [`Cluster::recv`]
    /// call — the master-side demultiplexer that lets independent session
    /// drivers share one resident cluster.
    ///
    /// Blocks indefinitely — correct for fault-free protocols, but if the
    /// session's worker can crash while *other* workers stay alive, the
    /// awaited reply may never come and the channel never disconnects:
    /// use [`Cluster::recv_for_timeout`] plus [`Cluster::dead_workers`]
    /// whenever faults are possible (as the session schedulers do).
    pub fn recv_for(&self, query: QueryId) -> Result<(usize, Bytes), ClusterError> {
        if let Some(reply) = self.parked.take(query) {
            return Ok(reply);
        }
        loop {
            let (worker, qid, payload) = {
                let (id, env) = self
                    .from_workers
                    .recv()
                    .map_err(|_| ClusterError::AllWorkersLost)?;
                self.open(id, env)
            };
            if qid == query {
                return Ok((worker, payload));
            }
            self.parked.park(qid, worker, payload);
        }
    }

    /// Session-routed receive with a deadline: like [`Cluster::recv_for`],
    /// but gives up with [`ClusterError::Timeout`] once `timeout` has
    /// elapsed without a reply for `query` (replies for other sessions
    /// arriving meanwhile are still parked for their owners).
    pub fn recv_for_timeout(
        &self,
        query: QueryId,
        timeout: Duration,
    ) -> Result<(usize, Bytes), ClusterError> {
        if let Some(reply) = self.parked.take(query) {
            return Ok(reply);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClusterError::Timeout { waited: timeout });
            }
            match self.from_workers.recv_timeout(remaining) {
                Ok((id, env)) => {
                    let (worker, qid, payload) = self.open(id, env);
                    if qid == query {
                        return Ok((worker, payload));
                    }
                    self.parked.park(qid, worker, payload);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(ClusterError::Timeout { waited: timeout })
                }
                Err(RecvTimeoutError::Disconnected) => return Err(ClusterError::AllWorkersLost),
            }
        }
    }

    /// Receives exactly `n` replies (any session), blocking. On failure
    /// the error carries the replies that had already arrived, so a
    /// partial batch is never silently discarded.
    pub fn recv_n(&self, n: usize) -> Result<Vec<(usize, QueryId, Bytes)>, BatchError> {
        let mut received = Vec::with_capacity(n);
        for _ in 0..n {
            match self.recv() {
                Ok(reply) => received.push(reply),
                Err(error) => return Err(BatchError { received, error }),
            }
        }
        Ok(received)
    }

    /// Receives exactly `n` replies (any session), waiting at most
    /// `timeout` for each. On failure — including a mid-batch timeout —
    /// the error carries the replies that had already arrived.
    pub fn recv_n_timeout(
        &self,
        n: usize,
        timeout: Duration,
    ) -> Result<Vec<(usize, QueryId, Bytes)>, BatchError> {
        let mut received = Vec::with_capacity(n);
        for _ in 0..n {
            match self.recv_timeout(timeout) {
                Ok(reply) => received.push(reply),
                Err(error) => return Err(BatchError { received, error }),
            }
        }
        Ok(received)
    }

    /// Charges the transfer delay and opens a received envelope.
    fn open(&self, id: usize, env: Envelope) -> (usize, QueryId, Bytes) {
        if !env.delay.is_zero() {
            std::thread::sleep(env.delay);
        }
        (id, env.query, env.payload)
    }

    /// Sends every worker a shutdown order and joins the threads.
    /// Idempotent — the handle list is drained, so a second call (e.g.
    /// `shutdown` followed by `Drop`) is a no-op.
    pub(crate) fn shutdown_in_place(&mut self) {
        for tx in &self.to_workers {
            let _ = tx.send(ToWorker::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Shuts every worker down and joins the threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }
}

/// The per-worker thread body: deliver messages to the logic, applying
/// the worker's fault slice. Crashes terminate the thread (dropping the
/// inbox receiver, so later master sends fail like sends to a dead node).
fn worker_loop<L: WorkerLogic>(
    rx: Receiver<ToWorker>,
    logic: &mut L,
    ctx: &mut WorkerCtx,
    faults: WorkerFaults,
) {
    let mut msg_index: u64 = 0;
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Message(env) => {
                if !env.delay.is_zero() {
                    std::thread::sleep(env.delay);
                }
                ctx.current_query = env.query;
                let action = faults.action(msg_index);
                msg_index += 1;
                match action {
                    FaultAction::Deliver => {
                        if logic.on_message(env.query, env.payload, ctx) == Control::Shutdown {
                            break;
                        }
                    }
                    FaultAction::CrashBeforeReply => {
                        ctx.metrics.record_crash(ctx.worker_id);
                        break;
                    }
                    FaultAction::CrashAfterReply => {
                        let _ = logic.on_message(env.query, env.payload, ctx);
                        ctx.metrics.record_crash(ctx.worker_id);
                        break;
                    }
                    FaultAction::DropReply => {
                        ctx.reply_fault = ReplyFault::Drop;
                        let control = logic.on_message(env.query, env.payload, ctx);
                        ctx.reply_fault = ReplyFault::None;
                        if control == Control::Shutdown {
                            break;
                        }
                    }
                    FaultAction::Straggle(extra) => {
                        ctx.reply_fault = ReplyFault::Delay(extra);
                        let control = logic.on_message(env.query, env.payload, ctx);
                        ctx.reply_fault = ReplyFault::None;
                        if control == Control::Shutdown {
                            break;
                        }
                    }
                }
            }
            ToWorker::Shutdown => break,
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for tx in &self.to_workers {
            let _ = tx.send(ToWorker::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use std::collections::HashMap;

    const Q0: QueryId = QueryId(0);

    /// Echo worker: replies with its payload (framed with the session id
    /// of the message it answers).
    fn echo() -> impl WorkerLogic {
        |_query: QueryId, payload: Bytes, ctx: &mut WorkerCtx| {
            ctx.send_to_master(payload);
            Control::Continue
        }
    }

    #[test]
    fn roundtrip_through_one_worker() {
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| echo()).unwrap();
        cluster
            .send(0, QueryId(9), Bytes::from_static(b"hello"), true)
            .unwrap();
        let (id, query, reply) = cluster.recv().unwrap();
        assert_eq!(id, 0);
        assert_eq!(query, QueryId(9), "the reply echoes the session tag");
        assert_eq!(&reply[..], b"hello");
        cluster.shutdown();
    }

    #[test]
    fn bytes_are_counted_both_ways() {
        let cluster = Cluster::spawn(2, LatencyModel::ZERO, |_| echo()).unwrap();
        cluster
            .send(0, Q0, Bytes::from_static(b"abcd"), false)
            .unwrap();
        cluster
            .send(1, Q0, Bytes::from_static(b"xy"), false)
            .unwrap();
        let _ = cluster.recv_n(2).unwrap();
        let s = cluster.metrics().snapshot();
        // Payload bytes plus the 8-byte session envelope per message.
        assert_eq!(s.master_to_worker_bytes, 6 + 16);
        assert_eq!(s.worker_to_master_bytes, 6 + 16);
        assert_eq!(s.messages, 4);
        cluster.shutdown();
    }

    #[test]
    fn broadcast_counts_per_worker() {
        let cluster = Cluster::spawn(4, LatencyModel::ZERO, |_| echo()).unwrap();
        cluster
            .broadcast(Q0, &Bytes::from_static(b"123"), false)
            .unwrap();
        let _ = cluster.recv_n(4).unwrap();
        // (3 payload + 8 envelope) bytes x 4 workers.
        assert_eq!(cluster.metrics().snapshot().master_to_worker_bytes, 44);
        cluster.shutdown();
    }

    #[test]
    fn workers_have_private_state() {
        // Each worker counts its own messages; counts must not mix.
        let cluster = Cluster::spawn(2, LatencyModel::ZERO, |_| {
            let mut count = 0u64;
            move |_query: QueryId, _payload: Bytes, ctx: &mut WorkerCtx| {
                count += 1;
                ctx.send_to_master(Bytes::copy_from_slice(&count.to_le_bytes()));
                Control::Continue
            }
        })
        .unwrap();
        cluster.send(0, Q0, Bytes::from_static(b""), false).unwrap();
        cluster.send(0, Q0, Bytes::from_static(b""), false).unwrap();
        cluster.send(1, Q0, Bytes::from_static(b""), false).unwrap();
        let replies = cluster.recv_n(3).unwrap();
        let count_of = |id: usize| {
            replies
                .iter()
                .filter(|(i, _, _)| *i == id)
                .map(|(_, _, b)| u64::from_le_bytes(b[..8].try_into().unwrap()))
                .max()
                .unwrap()
        };
        assert_eq!(count_of(0), 2);
        assert_eq!(count_of(1), 1);
        cluster.shutdown();
    }

    #[test]
    fn workers_can_hold_per_session_state() {
        // One worker, two interleaved sessions: per-query counters must
        // not bleed across sessions.
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            move |query: QueryId, _payload: Bytes, ctx: &mut WorkerCtx| {
                let c = counts.entry(query.0).or_insert(0);
                *c += 1;
                ctx.send_to_master(Bytes::copy_from_slice(&c.to_le_bytes()));
                Control::Continue
            }
        })
        .unwrap();
        for q in [1u64, 2, 1, 1, 2] {
            cluster
                .send(0, QueryId(q), Bytes::from_static(b""), false)
                .unwrap();
        }
        let replies = cluster.recv_n(5).unwrap();
        let counts: Vec<(u64, u64)> = replies
            .iter()
            .map(|(_, q, b)| (q.0, u64::from_le_bytes(b[..8].try_into().unwrap())))
            .collect();
        assert_eq!(counts, vec![(1, 1), (2, 1), (1, 2), (1, 3), (2, 2)]);
        cluster.shutdown();
    }

    #[test]
    fn recv_for_routes_replies_to_the_owning_session() {
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| echo()).unwrap();
        // Session 2's message goes out first, so its reply arrives first —
        // but session 1's recv_for must get session 1's reply, with the
        // other parked for its owner.
        cluster
            .send(0, QueryId(2), Bytes::from_static(b"two"), false)
            .unwrap();
        cluster
            .send(0, QueryId(1), Bytes::from_static(b"one"), false)
            .unwrap();
        let (_, reply) = cluster.recv_for(QueryId(1)).unwrap();
        assert_eq!(&reply[..], b"one");
        let (_, reply) = cluster.recv_for(QueryId(2)).unwrap();
        assert_eq!(&reply[..], b"two", "the parked reply is delivered");
        cluster.shutdown();
    }

    #[test]
    fn recv_for_timeout_parks_other_sessions_replies() {
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| echo()).unwrap();
        cluster
            .send(0, QueryId(5), Bytes::from_static(b"x"), false)
            .unwrap();
        // Session 9 never gets a reply: timeout, while session 5's reply
        // is parked, not lost.
        assert!(matches!(
            cluster.recv_for_timeout(QueryId(9), Duration::from_millis(30)),
            Err(ClusterError::Timeout { .. })
        ));
        let (_, reply) = cluster
            .recv_for_timeout(QueryId(5), Duration::from_millis(100))
            .unwrap();
        assert_eq!(&reply[..], b"x");
        cluster.shutdown();
    }

    #[test]
    fn parked_replies_surface_through_plain_recv() {
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| echo()).unwrap();
        cluster
            .send(0, QueryId(3), Bytes::from_static(b"parked"), false)
            .unwrap();
        // Park session 3's reply by asking for a session that stays
        // silent...
        assert!(cluster
            .recv_for_timeout(QueryId(4), Duration::from_millis(30))
            .is_err());
        // ...then an untargeted recv still sees it (nothing is lost).
        let (_, query, reply) = cluster.recv().unwrap();
        assert_eq!(query, QueryId(3));
        assert_eq!(&reply[..], b"parked");
        cluster.shutdown();
    }

    #[test]
    fn latency_delays_delivery() {
        let latency = LatencyModel {
            per_message_us: 20_000,
            per_kib_us: 0,
            task_launch_us: 0,
        };
        let cluster = Cluster::spawn(1, latency, |_| echo()).unwrap();
        let t0 = std::time::Instant::now();
        cluster
            .send(0, Q0, Bytes::from_static(b"x"), false)
            .unwrap();
        let _ = cluster.recv().unwrap();
        // One delay on delivery to the worker, one on the reply.
        assert!(t0.elapsed() >= Duration::from_micros(40_000));
        cluster.shutdown();
    }

    #[test]
    fn worker_can_request_shutdown() {
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| {
            |_query: QueryId, _payload: Bytes, ctx: &mut WorkerCtx| {
                ctx.send_to_master(Bytes::from_static(b"bye"));
                Control::Shutdown
            }
        })
        .unwrap();
        cluster.send(0, Q0, Bytes::from_static(b""), false).unwrap();
        let (_, _, reply) = cluster.recv().unwrap();
        assert_eq!(&reply[..], b"bye");
        cluster.shutdown();
    }

    #[test]
    fn drop_joins_threads() {
        let cluster = Cluster::spawn(3, LatencyModel::ZERO, |_| echo()).unwrap();
        drop(cluster); // must not hang or panic
    }

    #[test]
    fn crashed_worker_yields_typed_errors_not_panics() {
        // Worker 0 crashes before its first reply (min_survivors: 0 lets
        // the only worker crash).
        let faults = FaultPlan {
            crash_prob: 1.0,
            min_survivors: 0,
            ..FaultPlan::NONE
        };
        // crash_at may be 1 or 2; send enough messages to trigger it.
        let cluster =
            Cluster::spawn_with_faults(1, LatencyModel::ZERO, &faults, |_| echo()).unwrap();
        for _ in 0..3 {
            if cluster
                .send(0, Q0, Bytes::from_static(b"x"), false)
                .is_err()
            {
                break;
            }
            // Give the worker a moment to process (and possibly die).
            std::thread::sleep(Duration::from_millis(2));
        }
        // Eventually the worker is dead: sends fail with a typed error.
        let mut lost = false;
        for _ in 0..100 {
            match cluster.send(0, Q0, Bytes::from_static(b"x"), false) {
                Err(ClusterError::WorkerLost { worker: 0 }) => {
                    lost = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
                Ok(()) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        assert!(lost, "send to a crashed worker must fail");
        assert!(!cluster.is_worker_alive(0));
        assert_eq!(cluster.dead_workers(), vec![0]);
        // The worker may have echoed messages delivered before its crash
        // point (crash_at need not be 0); drain those, then recv on the
        // fully-dead, fully-drained cluster errors instead of hanging.
        while cluster.recv().is_ok() {}
        assert_eq!(cluster.recv(), Err(ClusterError::AllWorkersLost));
        assert!(cluster.metrics().snapshot().crashes >= 1);
        cluster.shutdown();
    }

    #[test]
    fn recv_n_failure_carries_partial_results() {
        // Worker 0 echoes; worker 1 crashes on its first message. A batch
        // of 3 can therefore never complete — but the error must hand
        // back the replies that did arrive instead of discarding them.
        let faults = FaultPlan {
            crash_prob: 1.0,
            min_survivors: 1,
            ..FaultPlan::NONE
        }
        .with_seed_where(2, 512, |s| {
            s.action(1, 0) == FaultAction::CrashBeforeReply
                && s.action(0, 0) == FaultAction::Deliver
        })
        .expect("some seed crashes worker 1 immediately");
        let cluster =
            Cluster::spawn_with_faults(2, LatencyModel::ZERO, &faults, |_| echo()).unwrap();
        cluster
            .send(0, Q0, Bytes::from_static(b"ok"), false)
            .unwrap();
        cluster
            .send(1, Q0, Bytes::from_static(b"doomed"), false)
            .unwrap();
        let err = cluster
            .recv_n_timeout(2, Duration::from_millis(50))
            .expect_err("the crashed worker's reply never comes");
        assert_eq!(err.received.len(), 1, "the delivered reply is kept");
        assert_eq!(&err.received[0].2[..], b"ok");
        assert!(matches!(err.error, ClusterError::Timeout { .. }));
        assert!(err.to_string().contains("1 of the batch"));
        cluster.shutdown();
    }

    #[test]
    fn recv_n_disconnect_carries_partial_results() {
        // A single worker that replies once and then shuts itself down:
        // recv_n(2) fails with AllWorkersLost but keeps the first reply.
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| {
            |_query: QueryId, _payload: Bytes, ctx: &mut WorkerCtx| {
                ctx.send_to_master(Bytes::from_static(b"only"));
                Control::Shutdown
            }
        })
        .unwrap();
        cluster.send(0, Q0, Bytes::from_static(b""), false).unwrap();
        let err = cluster.recv_n(2).expect_err("second reply never comes");
        assert_eq!(err.received.len(), 1);
        assert_eq!(&err.received[0].2[..], b"only");
        assert_eq!(err.error, ClusterError::AllWorkersLost);
        cluster.shutdown();
    }

    #[test]
    fn recv_timeout_reports_timeout() {
        // Worker alive but silent (no message sent to it).
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| echo()).unwrap();
        let waited = Duration::from_millis(5);
        assert_eq!(
            cluster.recv_timeout(waited),
            Err(ClusterError::Timeout { waited })
        );
        assert!(cluster.is_worker_alive(0));
        cluster.shutdown();
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| echo()).unwrap();
        assert!(matches!(
            cluster.try_recv(),
            Err(ClusterError::Timeout { .. })
        ));
        cluster
            .send(0, Q0, Bytes::from_static(b"now"), false)
            .unwrap();
        // Wait for the echo to land, then try_recv sees it.
        let mut got = None;
        for _ in 0..200 {
            match cluster.try_recv() {
                Ok(r) => {
                    got = Some(r);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        let (_, _, reply) = got.expect("echo arrives");
        assert_eq!(&reply[..], b"now");
        cluster.shutdown();
    }

    #[test]
    fn dropped_replies_are_counted_not_delivered() {
        let faults = FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::NONE
        };
        let cluster =
            Cluster::spawn_with_faults(2, LatencyModel::ZERO, &faults, |_| echo()).unwrap();
        cluster
            .send(0, Q0, Bytes::from_static(b"x"), false)
            .unwrap();
        cluster
            .send(1, Q0, Bytes::from_static(b"y"), false)
            .unwrap();
        assert!(cluster.recv_timeout(Duration::from_millis(50)).is_err());
        let s = cluster.metrics().snapshot();
        assert_eq!(s.drops, 2);
        assert_eq!(
            s.worker_to_master_bytes, 0,
            "dropped replies never hit the wire counters"
        );
        let w = cluster.metrics().worker_counters();
        assert_eq!(w[0].failures, 1);
        assert_eq!(w[1].failures, 1);
        cluster.shutdown();
    }

    #[test]
    fn straggler_delays_but_delivers() {
        let faults = FaultPlan {
            straggle_prob: 1.0,
            straggle_us: 30_000,
            ..FaultPlan::NONE
        };
        let cluster =
            Cluster::spawn_with_faults(1, LatencyModel::ZERO, &faults, |_| echo()).unwrap();
        cluster
            .send(0, Q0, Bytes::from_static(b"slow"), false)
            .unwrap();
        // Short timeout: the straggler has not replied yet.
        assert!(cluster.recv_timeout(Duration::from_millis(5)).is_err());
        // Patient wait: the reply eventually arrives intact.
        let (_, _, reply) = cluster.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(&reply[..], b"slow");
        assert_eq!(cluster.metrics().snapshot().straggles, 1);
        cluster.shutdown();
    }

    #[test]
    fn crash_after_reply_delivers_then_dies() {
        let faults = FaultPlan {
            crash_prob: 1.0,
            crash_after_reply_prob: 1.0,
            min_survivors: 0,
            ..FaultPlan::NONE
        };
        // Find a seed whose single worker crashes on message 0 so the
        // reply-then-die order is observable in one exchange.
        let seed = (0..64)
            .find(|&seed| {
                let plan = FaultPlan { seed, ..faults };
                plan.schedule(1).action(0, 0) == FaultAction::CrashAfterReply
            })
            .expect("some seed crashes at message 0");
        let plan = FaultPlan { seed, ..faults };
        let cluster = Cluster::spawn_with_faults(1, LatencyModel::ZERO, &plan, |_| echo()).unwrap();
        cluster
            .send(0, Q0, Bytes::from_static(b"last words"), false)
            .unwrap();
        let (_, _, reply) = cluster.recv().unwrap();
        assert_eq!(&reply[..], b"last words");
        // The worker died after replying.
        for _ in 0..200 {
            if !cluster.is_worker_alive(0) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!cluster.is_worker_alive(0));
        assert_eq!(cluster.metrics().snapshot().crashes, 1);
        cluster.shutdown();
    }
}
