//! The threaded node runtime.
//!
//! A [`Cluster`] owns one OS thread per worker node. Workers hold fully
//! private state (their [`WorkerLogic`] value moves into the thread) and
//! interact with the master exclusively through serialized, byte-counted,
//! latency-charged messages. The master-side protocol runs on the caller's
//! thread via [`Cluster::send`] / [`Cluster::recv`] /
//! [`Cluster::recv_timeout`].
//!
//! Faults can be injected deterministically via a
//! [`FaultPlan`](crate::fault::FaultPlan) passed to
//! [`Cluster::spawn_with_faults`]: workers then crash, drop replies or
//! straggle exactly as the resolved [`FaultSchedule`](crate::FaultSchedule)
//! dictates. The master observes faults only the way a real master would —
//! through send failures, receive timeouts and [`Cluster::is_worker_alive`]
//! — and every injected fault is tallied in the [`NetworkMetrics`].

use crate::fault::{FaultAction, FaultPlan, WorkerFaults};
use crate::latency::LatencyModel;
use crate::metrics::NetworkMetrics;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What a worker wants to happen after handling a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep the worker alive and wait for the next message.
    Continue,
    /// Terminate the worker thread.
    Shutdown,
}

/// Typed master-side cluster failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// A message could not be delivered because the worker's thread has
    /// terminated (crashed or shut down).
    WorkerLost {
        /// The dead worker's id.
        worker: usize,
    },
    /// Every worker has terminated and no replies remain.
    AllWorkersLost,
    /// No reply arrived within the timeout.
    Timeout {
        /// How long the master waited.
        waited: Duration,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::WorkerLost { worker } => {
                write!(f, "worker {worker} is no longer alive")
            }
            ClusterError::AllWorkersLost => write!(f, "every worker has terminated"),
            ClusterError::Timeout { waited } => {
                write!(f, "no worker reply within {waited:?}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// The fault applied to replies of the message currently being handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReplyFault {
    None,
    Drop,
    Delay(Duration),
}

/// Worker-side handle for replying to the master.
pub struct WorkerCtx {
    worker_id: usize,
    to_master: Sender<(usize, Envelope)>,
    metrics: Arc<NetworkMetrics>,
    latency: LatencyModel,
    reply_fault: ReplyFault,
}

impl WorkerCtx {
    /// This worker's node id (0-based).
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// Sends a serialized reply to the master. The payload size is counted
    /// and the transfer delay is charged on the master side.
    ///
    /// Under fault injection the reply may be silently dropped (the
    /// simulated network ate it) or delayed worker-side (straggler); both
    /// are tallied here, where a reply actually exists — a drop/straggle
    /// fault armed on a message that produces no reply is a no-op and is
    /// deliberately not counted.
    pub fn send_to_master(&self, payload: Bytes) {
        match self.reply_fault {
            ReplyFault::Drop => {
                self.metrics.record_drop(self.worker_id);
                return; // lost in the network
            }
            ReplyFault::Delay(d) => {
                self.metrics.record_straggle(self.worker_id);
                std::thread::sleep(d);
            }
            ReplyFault::None => {}
        }
        self.metrics
            .record_reply(self.worker_id, payload.len() as u64);
        let delay = self.latency.delay(payload.len(), false);
        // The channel being closed means the master is gone (cluster drop
        // mid-protocol); the reply is moot then.
        let _ = self
            .to_master
            .send((self.worker_id, Envelope { payload, delay }));
    }
}

/// Per-node protocol logic, supplied by the algorithm crates.
pub trait WorkerLogic: Send + 'static {
    /// Handles one message from the master.
    fn on_message(&mut self, payload: Bytes, ctx: &mut WorkerCtx) -> Control;
}

/// Blanket implementation so simple protocols can be closures.
impl<F> WorkerLogic for F
where
    F: FnMut(Bytes, &mut WorkerCtx) -> Control + Send + 'static,
{
    fn on_message(&mut self, payload: Bytes, ctx: &mut WorkerCtx) -> Control {
        self(payload, ctx)
    }
}

struct Envelope {
    payload: Bytes,
    delay: Duration,
}

enum ToWorker {
    Message(Envelope),
    Shutdown,
}

/// A simulated shared-nothing cluster: `m` worker threads plus the
/// master-side API on the calling thread.
pub struct Cluster {
    to_workers: Vec<Sender<ToWorker>>,
    from_workers: Receiver<(usize, Envelope)>,
    handles: Vec<JoinHandle<()>>,
    metrics: Arc<NetworkMetrics>,
    latency: LatencyModel,
}

impl Cluster {
    /// Spawns `num_workers` fault-free worker threads. `factory(i)` builds
    /// the logic value for worker `i`; it is moved into that worker's
    /// thread, so workers cannot share state.
    pub fn spawn<L, F>(num_workers: usize, latency: LatencyModel, factory: F) -> Cluster
    where
        L: WorkerLogic,
        F: FnMut(usize) -> L,
    {
        Cluster::spawn_with_faults(num_workers, latency, &FaultPlan::NONE, factory)
    }

    /// Spawns `num_workers` worker threads with the given fault plan
    /// resolved into a deterministic schedule (same plan and worker count
    /// → same injected faults per message).
    pub fn spawn_with_faults<L, F>(
        num_workers: usize,
        latency: LatencyModel,
        faults: &FaultPlan,
        mut factory: F,
    ) -> Cluster
    where
        L: WorkerLogic,
        F: FnMut(usize) -> L,
    {
        assert!(num_workers >= 1, "a cluster needs at least one worker");
        let schedule = faults.schedule(num_workers);
        let metrics = Arc::new(NetworkMetrics::with_workers(num_workers));
        let (master_tx, from_workers) = unbounded::<(usize, Envelope)>();
        let mut to_workers = Vec::with_capacity(num_workers);
        let mut handles = Vec::with_capacity(num_workers);
        for id in 0..num_workers {
            let (tx, rx) = unbounded::<ToWorker>();
            to_workers.push(tx);
            let mut logic = factory(id);
            let wf = schedule.worker(id);
            let mut ctx = WorkerCtx {
                worker_id: id,
                to_master: master_tx.clone(),
                metrics: Arc::clone(&metrics),
                latency,
                reply_fault: ReplyFault::None,
            };
            let handle = std::thread::Builder::new()
                .name(format!("mpq-worker-{id}"))
                .spawn(move || worker_loop(rx, &mut logic, &mut ctx, wf))
                .expect("spawn worker thread");
            handles.push(handle);
        }
        Cluster {
            to_workers,
            from_workers,
            handles,
            metrics,
            latency,
        }
    }

    /// Number of worker nodes.
    pub fn num_workers(&self) -> usize {
        self.to_workers.len()
    }

    /// The shared network counters.
    pub fn metrics(&self) -> &NetworkMetrics {
        &self.metrics
    }

    /// Whether worker `id`'s thread is still running. This is the
    /// simulated analogue of a cluster manager's liveness probe: the
    /// master may consult it when deciding whether a missing reply means a
    /// straggler or a dead node.
    pub fn is_worker_alive(&self, id: usize) -> bool {
        !self.handles[id].is_finished()
    }

    /// Ids of workers whose threads have terminated.
    pub fn dead_workers(&self) -> Vec<usize> {
        (0..self.num_workers())
            .filter(|&id| !self.is_worker_alive(id))
            .collect()
    }

    /// Sends a serialized message to worker `id`. `is_assignment` marks
    /// task-assignment messages, which carry extra launch overhead in the
    /// latency model.
    ///
    /// Returns [`ClusterError::WorkerLost`] if the worker has terminated.
    ///
    /// # Panics
    /// Panics if `id` is out of range (a protocol bug, not a fault).
    pub fn send(&self, id: usize, payload: Bytes, is_assignment: bool) -> Result<(), ClusterError> {
        let len = payload.len();
        let delay = self.latency.delay(len, is_assignment);
        self.to_workers[id]
            .send(ToWorker::Message(Envelope { payload, delay }))
            .map_err(|_| ClusterError::WorkerLost { worker: id })?;
        self.metrics.record_to_worker(len as u64);
        Ok(())
    }

    /// Sends the same payload to every worker (counted once per worker —
    /// a cluster switch still delivers `m` copies). Fails on the first
    /// dead worker.
    pub fn broadcast(&self, payload: &Bytes, is_assignment: bool) -> Result<(), ClusterError> {
        for id in 0..self.num_workers() {
            self.send(id, payload.clone(), is_assignment)?;
        }
        Ok(())
    }

    /// Receives the next worker reply, blocking. The reply's transfer
    /// delay is charged here (master side).
    ///
    /// Returns [`ClusterError::AllWorkersLost`] if every worker has
    /// terminated and no replies remain.
    pub fn recv(&self) -> Result<(usize, Bytes), ClusterError> {
        let (id, env) = self
            .from_workers
            .recv()
            .map_err(|_| ClusterError::AllWorkersLost)?;
        if !env.delay.is_zero() {
            std::thread::sleep(env.delay);
        }
        Ok((id, env.payload))
    }

    /// Receives the next worker reply, waiting at most `timeout`. The
    /// reply's transfer delay is charged here (master side).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(usize, Bytes), ClusterError> {
        match self.from_workers.recv_timeout(timeout) {
            Ok((id, env)) => {
                if !env.delay.is_zero() {
                    std::thread::sleep(env.delay);
                }
                Ok((id, env.payload))
            }
            Err(RecvTimeoutError::Timeout) => Err(ClusterError::Timeout { waited: timeout }),
            Err(RecvTimeoutError::Disconnected) => Err(ClusterError::AllWorkersLost),
        }
    }

    /// Receives exactly `n` replies, blocking.
    pub fn recv_n(&self, n: usize) -> Result<Vec<(usize, Bytes)>, ClusterError> {
        (0..n).map(|_| self.recv()).collect()
    }

    /// Shuts every worker down and joins the threads.
    pub fn shutdown(mut self) {
        for tx in &self.to_workers {
            let _ = tx.send(ToWorker::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The per-worker thread body: deliver messages to the logic, applying
/// the worker's fault slice. Crashes terminate the thread (dropping the
/// inbox receiver, so later master sends fail like sends to a dead node).
fn worker_loop<L: WorkerLogic>(
    rx: Receiver<ToWorker>,
    logic: &mut L,
    ctx: &mut WorkerCtx,
    faults: WorkerFaults,
) {
    let mut msg_index: u64 = 0;
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Message(env) => {
                if !env.delay.is_zero() {
                    std::thread::sleep(env.delay);
                }
                let action = faults.action(msg_index);
                msg_index += 1;
                match action {
                    FaultAction::Deliver => {
                        if logic.on_message(env.payload, ctx) == Control::Shutdown {
                            break;
                        }
                    }
                    FaultAction::CrashBeforeReply => {
                        ctx.metrics.record_crash(ctx.worker_id);
                        break;
                    }
                    FaultAction::CrashAfterReply => {
                        let _ = logic.on_message(env.payload, ctx);
                        ctx.metrics.record_crash(ctx.worker_id);
                        break;
                    }
                    FaultAction::DropReply => {
                        ctx.reply_fault = ReplyFault::Drop;
                        let control = logic.on_message(env.payload, ctx);
                        ctx.reply_fault = ReplyFault::None;
                        if control == Control::Shutdown {
                            break;
                        }
                    }
                    FaultAction::Straggle(extra) => {
                        ctx.reply_fault = ReplyFault::Delay(extra);
                        let control = logic.on_message(env.payload, ctx);
                        ctx.reply_fault = ReplyFault::None;
                        if control == Control::Shutdown {
                            break;
                        }
                    }
                }
            }
            ToWorker::Shutdown => break,
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for tx in &self.to_workers {
            let _ = tx.send(ToWorker::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo worker: replies with its payload.
    fn echo() -> impl WorkerLogic {
        |payload: Bytes, ctx: &mut WorkerCtx| {
            ctx.send_to_master(payload);
            Control::Continue
        }
    }

    #[test]
    fn roundtrip_through_one_worker() {
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| echo());
        cluster.send(0, Bytes::from_static(b"hello"), true).unwrap();
        let (id, reply) = cluster.recv().unwrap();
        assert_eq!(id, 0);
        assert_eq!(&reply[..], b"hello");
        cluster.shutdown();
    }

    #[test]
    fn bytes_are_counted_both_ways() {
        let cluster = Cluster::spawn(2, LatencyModel::ZERO, |_| echo());
        cluster.send(0, Bytes::from_static(b"abcd"), false).unwrap();
        cluster.send(1, Bytes::from_static(b"xy"), false).unwrap();
        let _ = cluster.recv_n(2).unwrap();
        let s = cluster.metrics().snapshot();
        assert_eq!(s.master_to_worker_bytes, 6);
        assert_eq!(s.worker_to_master_bytes, 6);
        assert_eq!(s.messages, 4);
        cluster.shutdown();
    }

    #[test]
    fn broadcast_counts_per_worker() {
        let cluster = Cluster::spawn(4, LatencyModel::ZERO, |_| echo());
        cluster
            .broadcast(&Bytes::from_static(b"123"), false)
            .unwrap();
        let _ = cluster.recv_n(4).unwrap();
        assert_eq!(cluster.metrics().snapshot().master_to_worker_bytes, 12);
        cluster.shutdown();
    }

    #[test]
    fn workers_have_private_state() {
        // Each worker counts its own messages; counts must not mix.
        let cluster = Cluster::spawn(2, LatencyModel::ZERO, |_| {
            let mut count = 0u64;
            move |_payload: Bytes, ctx: &mut WorkerCtx| {
                count += 1;
                ctx.send_to_master(Bytes::copy_from_slice(&count.to_le_bytes()));
                Control::Continue
            }
        });
        cluster.send(0, Bytes::from_static(b""), false).unwrap();
        cluster.send(0, Bytes::from_static(b""), false).unwrap();
        cluster.send(1, Bytes::from_static(b""), false).unwrap();
        let replies = cluster.recv_n(3).unwrap();
        let count_of = |id: usize| {
            replies
                .iter()
                .filter(|(i, _)| *i == id)
                .map(|(_, b)| u64::from_le_bytes(b[..8].try_into().unwrap()))
                .max()
                .unwrap()
        };
        assert_eq!(count_of(0), 2);
        assert_eq!(count_of(1), 1);
        cluster.shutdown();
    }

    #[test]
    fn latency_delays_delivery() {
        let latency = LatencyModel {
            per_message_us: 20_000,
            per_kib_us: 0,
            task_launch_us: 0,
        };
        let cluster = Cluster::spawn(1, latency, |_| echo());
        let t0 = std::time::Instant::now();
        cluster.send(0, Bytes::from_static(b"x"), false).unwrap();
        let _ = cluster.recv().unwrap();
        // One delay on delivery to the worker, one on the reply.
        assert!(t0.elapsed() >= Duration::from_micros(40_000));
        cluster.shutdown();
    }

    #[test]
    fn worker_can_request_shutdown() {
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| {
            |_payload: Bytes, ctx: &mut WorkerCtx| {
                ctx.send_to_master(Bytes::from_static(b"bye"));
                Control::Shutdown
            }
        });
        cluster.send(0, Bytes::from_static(b""), false).unwrap();
        let (_, reply) = cluster.recv().unwrap();
        assert_eq!(&reply[..], b"bye");
        cluster.shutdown();
    }

    #[test]
    fn drop_joins_threads() {
        let cluster = Cluster::spawn(3, LatencyModel::ZERO, |_| echo());
        drop(cluster); // must not hang or panic
    }

    #[test]
    fn crashed_worker_yields_typed_errors_not_panics() {
        // Worker 0 crashes before its first reply (min_survivors: 0 lets
        // the only worker crash).
        let faults = FaultPlan {
            crash_prob: 1.0,
            min_survivors: 0,
            ..FaultPlan::NONE
        };
        // crash_at may be 1 or 2; send enough messages to trigger it.
        let cluster = Cluster::spawn_with_faults(1, LatencyModel::ZERO, &faults, |_| echo());
        for _ in 0..3 {
            if cluster.send(0, Bytes::from_static(b"x"), false).is_err() {
                break;
            }
            // Give the worker a moment to process (and possibly die).
            std::thread::sleep(Duration::from_millis(2));
        }
        // Eventually the worker is dead: sends fail with a typed error.
        let mut lost = false;
        for _ in 0..100 {
            match cluster.send(0, Bytes::from_static(b"x"), false) {
                Err(ClusterError::WorkerLost { worker: 0 }) => {
                    lost = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
                Ok(()) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        assert!(lost, "send to a crashed worker must fail");
        assert!(!cluster.is_worker_alive(0));
        assert_eq!(cluster.dead_workers(), vec![0]);
        // The worker may have echoed messages delivered before its crash
        // point (crash_at need not be 0); drain those, then recv on the
        // fully-dead, fully-drained cluster errors instead of hanging.
        while cluster.recv().is_ok() {}
        assert_eq!(cluster.recv(), Err(ClusterError::AllWorkersLost));
        assert!(cluster.metrics().snapshot().crashes >= 1);
        cluster.shutdown();
    }

    #[test]
    fn recv_timeout_reports_timeout() {
        // Worker alive but silent (no message sent to it).
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| echo());
        let waited = Duration::from_millis(5);
        assert_eq!(
            cluster.recv_timeout(waited),
            Err(ClusterError::Timeout { waited })
        );
        assert!(cluster.is_worker_alive(0));
        cluster.shutdown();
    }

    #[test]
    fn dropped_replies_are_counted_not_delivered() {
        let faults = FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::NONE
        };
        let cluster = Cluster::spawn_with_faults(2, LatencyModel::ZERO, &faults, |_| echo());
        cluster.send(0, Bytes::from_static(b"x"), false).unwrap();
        cluster.send(1, Bytes::from_static(b"y"), false).unwrap();
        assert!(cluster.recv_timeout(Duration::from_millis(50)).is_err());
        let s = cluster.metrics().snapshot();
        assert_eq!(s.drops, 2);
        assert_eq!(
            s.worker_to_master_bytes, 0,
            "dropped replies never hit the wire counters"
        );
        let w = cluster.metrics().worker_counters();
        assert_eq!(w[0].failures, 1);
        assert_eq!(w[1].failures, 1);
        cluster.shutdown();
    }

    #[test]
    fn straggler_delays_but_delivers() {
        let faults = FaultPlan {
            straggle_prob: 1.0,
            straggle_us: 30_000,
            ..FaultPlan::NONE
        };
        let cluster = Cluster::spawn_with_faults(1, LatencyModel::ZERO, &faults, |_| echo());
        cluster.send(0, Bytes::from_static(b"slow"), false).unwrap();
        // Short timeout: the straggler has not replied yet.
        assert!(cluster.recv_timeout(Duration::from_millis(5)).is_err());
        // Patient wait: the reply eventually arrives intact.
        let (_, reply) = cluster.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(&reply[..], b"slow");
        assert_eq!(cluster.metrics().snapshot().straggles, 1);
        cluster.shutdown();
    }

    #[test]
    fn crash_after_reply_delivers_then_dies() {
        let faults = FaultPlan {
            crash_prob: 1.0,
            crash_after_reply_prob: 1.0,
            min_survivors: 0,
            ..FaultPlan::NONE
        };
        // Find a seed whose single worker crashes on message 0 so the
        // reply-then-die order is observable in one exchange.
        let seed = (0..64)
            .find(|&seed| {
                let plan = FaultPlan { seed, ..faults };
                plan.schedule(1).action(0, 0) == FaultAction::CrashAfterReply
            })
            .expect("some seed crashes at message 0");
        let plan = FaultPlan { seed, ..faults };
        let cluster = Cluster::spawn_with_faults(1, LatencyModel::ZERO, &plan, |_| echo());
        cluster
            .send(0, Bytes::from_static(b"last words"), false)
            .unwrap();
        let (_, reply) = cluster.recv().unwrap();
        assert_eq!(&reply[..], b"last words");
        // The worker died after replying.
        for _ in 0..200 {
            if !cluster.is_worker_alive(0) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!cluster.is_worker_alive(0));
        assert_eq!(cluster.metrics().snapshot().crashes, 1);
        cluster.shutdown();
    }
}
