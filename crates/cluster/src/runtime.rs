//! The threaded node runtime.
//!
//! A [`Cluster`] owns one OS thread per worker node. Workers hold fully
//! private state (their [`WorkerLogic`] value moves into the thread) and
//! interact with the master exclusively through serialized, byte-counted,
//! latency-charged messages. The master-side protocol runs on the caller's
//! thread via [`Cluster::send`] / [`Cluster::recv`].

use crate::latency::LatencyModel;
use crate::metrics::NetworkMetrics;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What a worker wants to happen after handling a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep the worker alive and wait for the next message.
    Continue,
    /// Terminate the worker thread.
    Shutdown,
}

/// Worker-side handle for replying to the master.
pub struct WorkerCtx {
    worker_id: usize,
    to_master: Sender<(usize, Envelope)>,
    metrics: Arc<NetworkMetrics>,
    latency: LatencyModel,
}

impl WorkerCtx {
    /// This worker's node id (0-based).
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// Sends a serialized reply to the master. The payload size is counted
    /// and the transfer delay is charged on the master side.
    pub fn send_to_master(&self, payload: Bytes) {
        self.metrics.record_to_master(payload.len() as u64);
        let delay = self.latency.delay(payload.len(), false);
        // The channel being closed means the master is gone (cluster drop
        // mid-protocol); the reply is moot then.
        let _ = self
            .to_master
            .send((self.worker_id, Envelope { payload, delay }));
    }
}

/// Per-node protocol logic, supplied by the algorithm crates.
pub trait WorkerLogic: Send + 'static {
    /// Handles one message from the master.
    fn on_message(&mut self, payload: Bytes, ctx: &mut WorkerCtx) -> Control;
}

/// Blanket implementation so simple protocols can be closures.
impl<F> WorkerLogic for F
where
    F: FnMut(Bytes, &mut WorkerCtx) -> Control + Send + 'static,
{
    fn on_message(&mut self, payload: Bytes, ctx: &mut WorkerCtx) -> Control {
        self(payload, ctx)
    }
}

struct Envelope {
    payload: Bytes,
    delay: Duration,
}

enum ToWorker {
    Message(Envelope),
    Shutdown,
}

/// A simulated shared-nothing cluster: `m` worker threads plus the
/// master-side API on the calling thread.
pub struct Cluster {
    to_workers: Vec<Sender<ToWorker>>,
    from_workers: Receiver<(usize, Envelope)>,
    handles: Vec<JoinHandle<()>>,
    metrics: Arc<NetworkMetrics>,
    latency: LatencyModel,
}

impl Cluster {
    /// Spawns `num_workers` worker threads. `factory(i)` builds the logic
    /// value for worker `i`; it is moved into that worker's thread, so
    /// workers cannot share state.
    pub fn spawn<L, F>(num_workers: usize, latency: LatencyModel, mut factory: F) -> Cluster
    where
        L: WorkerLogic,
        F: FnMut(usize) -> L,
    {
        assert!(num_workers >= 1, "a cluster needs at least one worker");
        let metrics = Arc::new(NetworkMetrics::new());
        let (master_tx, from_workers) = unbounded::<(usize, Envelope)>();
        let mut to_workers = Vec::with_capacity(num_workers);
        let mut handles = Vec::with_capacity(num_workers);
        for id in 0..num_workers {
            let (tx, rx) = unbounded::<ToWorker>();
            to_workers.push(tx);
            let mut logic = factory(id);
            let mut ctx = WorkerCtx {
                worker_id: id,
                to_master: master_tx.clone(),
                metrics: Arc::clone(&metrics),
                latency,
            };
            let handle = std::thread::Builder::new()
                .name(format!("mpq-worker-{id}"))
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            ToWorker::Message(env) => {
                                if !env.delay.is_zero() {
                                    std::thread::sleep(env.delay);
                                }
                                if logic.on_message(env.payload, &mut ctx) == Control::Shutdown {
                                    break;
                                }
                            }
                            ToWorker::Shutdown => break,
                        }
                    }
                })
                .expect("spawn worker thread");
            handles.push(handle);
        }
        Cluster {
            to_workers,
            from_workers,
            handles,
            metrics,
            latency,
        }
    }

    /// Number of worker nodes.
    pub fn num_workers(&self) -> usize {
        self.to_workers.len()
    }

    /// The shared network counters.
    pub fn metrics(&self) -> &NetworkMetrics {
        &self.metrics
    }

    /// Sends a serialized message to worker `id`. `is_assignment` marks
    /// task-assignment messages, which carry extra launch overhead in the
    /// latency model.
    ///
    /// # Panics
    /// Panics if `id` is out of range or the worker already shut down.
    pub fn send(&self, id: usize, payload: Bytes, is_assignment: bool) {
        self.metrics.record_to_worker(payload.len() as u64);
        let delay = self.latency.delay(payload.len(), is_assignment);
        self.to_workers[id]
            .send(ToWorker::Message(Envelope { payload, delay }))
            .expect("worker alive");
    }

    /// Sends the same payload to every worker (counted once per worker —
    /// a cluster switch still delivers `m` copies).
    pub fn broadcast(&self, payload: &Bytes, is_assignment: bool) {
        for id in 0..self.num_workers() {
            self.send(id, payload.clone(), is_assignment);
        }
    }

    /// Receives the next worker reply, blocking. The reply's transfer
    /// delay is charged here (master side).
    ///
    /// # Panics
    /// Panics if every worker has shut down and no replies remain.
    pub fn recv(&self) -> (usize, Bytes) {
        let (id, env) = self.from_workers.recv().expect("workers alive");
        if !env.delay.is_zero() {
            std::thread::sleep(env.delay);
        }
        (id, env.payload)
    }

    /// Receives exactly `n` replies.
    pub fn recv_n(&self, n: usize) -> Vec<(usize, Bytes)> {
        (0..n).map(|_| self.recv()).collect()
    }

    /// Shuts every worker down and joins the threads.
    pub fn shutdown(mut self) {
        for tx in &self.to_workers {
            let _ = tx.send(ToWorker::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for tx in &self.to_workers {
            let _ = tx.send(ToWorker::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo worker: replies with its payload.
    fn echo() -> impl WorkerLogic {
        |payload: Bytes, ctx: &mut WorkerCtx| {
            ctx.send_to_master(payload);
            Control::Continue
        }
    }

    #[test]
    fn roundtrip_through_one_worker() {
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| echo());
        cluster.send(0, Bytes::from_static(b"hello"), true);
        let (id, reply) = cluster.recv();
        assert_eq!(id, 0);
        assert_eq!(&reply[..], b"hello");
        cluster.shutdown();
    }

    #[test]
    fn bytes_are_counted_both_ways() {
        let cluster = Cluster::spawn(2, LatencyModel::ZERO, |_| echo());
        cluster.send(0, Bytes::from_static(b"abcd"), false);
        cluster.send(1, Bytes::from_static(b"xy"), false);
        let _ = cluster.recv_n(2);
        let s = cluster.metrics().snapshot();
        assert_eq!(s.master_to_worker_bytes, 6);
        assert_eq!(s.worker_to_master_bytes, 6);
        assert_eq!(s.messages, 4);
        cluster.shutdown();
    }

    #[test]
    fn broadcast_counts_per_worker() {
        let cluster = Cluster::spawn(4, LatencyModel::ZERO, |_| echo());
        cluster.broadcast(&Bytes::from_static(b"123"), false);
        let _ = cluster.recv_n(4);
        assert_eq!(cluster.metrics().snapshot().master_to_worker_bytes, 12);
        cluster.shutdown();
    }

    #[test]
    fn workers_have_private_state() {
        // Each worker counts its own messages; counts must not mix.
        let cluster = Cluster::spawn(2, LatencyModel::ZERO, |_| {
            let mut count = 0u64;
            move |_payload: Bytes, ctx: &mut WorkerCtx| {
                count += 1;
                ctx.send_to_master(Bytes::copy_from_slice(&count.to_le_bytes()));
                Control::Continue
            }
        });
        cluster.send(0, Bytes::from_static(b""), false);
        cluster.send(0, Bytes::from_static(b""), false);
        cluster.send(1, Bytes::from_static(b""), false);
        let replies = cluster.recv_n(3);
        let count_of = |id: usize| {
            replies
                .iter()
                .filter(|(i, _)| *i == id)
                .map(|(_, b)| u64::from_le_bytes(b[..8].try_into().unwrap()))
                .max()
                .unwrap()
        };
        assert_eq!(count_of(0), 2);
        assert_eq!(count_of(1), 1);
        cluster.shutdown();
    }

    #[test]
    fn latency_delays_delivery() {
        let latency = LatencyModel {
            per_message_us: 20_000,
            per_kib_us: 0,
            task_launch_us: 0,
        };
        let cluster = Cluster::spawn(1, latency, |_| echo());
        let t0 = std::time::Instant::now();
        cluster.send(0, Bytes::from_static(b"x"), false);
        let _ = cluster.recv();
        // One delay on delivery to the worker, one on the reply.
        assert!(t0.elapsed() >= Duration::from_micros(40_000));
        cluster.shutdown();
    }

    #[test]
    fn worker_can_request_shutdown() {
        let cluster = Cluster::spawn(1, LatencyModel::ZERO, |_| {
            |_payload: Bytes, ctx: &mut WorkerCtx| {
                ctx.send_to_master(Bytes::from_static(b"bye"));
                Control::Shutdown
            }
        });
        cluster.send(0, Bytes::from_static(b""), false);
        let (_, reply) = cluster.recv();
        assert_eq!(&reply[..], b"bye");
        cluster.shutdown();
    }

    #[test]
    fn drop_joins_threads() {
        let cluster = Cluster::spawn(3, LatencyModel::ZERO, |_| echo());
        drop(cluster); // must not hang or panic
    }
}
