//! Simulated shared-nothing cluster substrate.
//!
//! The paper evaluates on a 100-node Spark/Yarn cluster; this crate
//! reproduces the *shared-nothing discipline* of that environment on one
//! machine so that the algorithmic properties under test — communication
//! rounds, bytes on the wire, per-worker state — are exercised by real code
//! paths:
//!
//! * Worker nodes are OS threads with **fully private state**: the only way
//!   data moves between the master and a worker is a serialized message.
//! * Every message is encoded through the binary [`codec`], its size is
//!   added to the [`NetworkMetrics`] byte counters, and it is decoded on
//!   the receiving side — nothing crosses by reference.
//! * A configurable [`LatencyModel`] charges task-assignment overhead and
//!   transfer latency per message, mimicking the "high network latency and
//!   task assignment overheads" of the paper's Spark setup.
//!
//! The [`runtime::Cluster`] is protocol-agnostic: the MPQ algorithm
//! (`mpq-algo`) and the SMA baseline (`mpq-sma`) implement their own
//! message types on top of [`codec::Wire`].
//!
//! A cluster is **long-lived and multi-session**: every wire message is
//! framed in a [`codec::SessionEnvelope`] tagging the owning
//! [`codec::QueryId`], worker logic receives that id with each message
//! (so one worker can hold state for many in-flight queries), and the
//! master can either receive untargeted ([`Cluster::recv`]) or route
//! replies to the owning session ([`Cluster::recv_for`]), with replies
//! for other sessions parked rather than dropped.
//!
//! The runtime can also inject **deterministic faults** — worker crashes
//! (before or after replying), dropped replies and stragglers — from a
//! seed-driven [`FaultPlan`] (see [`fault`]). Masters observe faults
//! through typed [`ClusterError`]s, [`Cluster::recv_timeout`] and
//! liveness probes rather than panics, mirroring how a Spark-style
//! master observes executor loss.

#![forbid(unsafe_code)]

pub mod codec;
pub mod fault;
pub mod latency;
pub mod metrics;
pub mod runtime;
pub mod transport;

pub use codec::{
    DecodeError, Decoder, EncodeError, Encoder, Progress, QueryId, SessionEnvelope, Wire,
};
pub use fault::{FaultAction, FaultPlan, FaultSchedule, WorkerFaults};
pub use latency::LatencyModel;
pub use metrics::{NetworkMetrics, NetworkSnapshot, WorkerCounters};
pub use runtime::{
    mint_service_instance, AbandonedList, BatchError, Cluster, ClusterError, Control, ReplyPark,
    WorkerCtx, WorkerLogic,
};
pub use transport::{
    frame_with_prefix, serve_worker, FrameBuffer, Hello, SocketTransport, Transport, WireListener,
    WireStream, WorkerAddr, LENGTH_PREFIX_BYTES,
};
