//! Message-plane abstraction and the real byte-stream transport.
//!
//! The [`Transport`] trait is the master-side message plane: everything a
//! session scheduler needs from "the cluster" — typed sends, session-routed
//! receives, liveness probes, byte counters. Two implementations exist:
//!
//! * the in-process simulated [`Cluster`] (threads + channels + a
//!   [`LatencyModel`](crate::LatencyModel)), unchanged — every existing
//!   test and experiment runs on it; and
//! * [`SocketTransport`]: real worker **processes** reached over TCP or
//!   Unix-domain sockets, speaking length-prefixed [`SessionEnvelope`]
//!   frames in the same little-endian [`codec`](crate::codec). Latency is
//!   whatever the wire provides (none is simulated), byte counters are fed
//!   from actual socket I/O, and connection loss surfaces as the same
//!   typed [`ClusterError`]s the simulator produces — so the MPQ retry /
//!   steal machinery is exercised by genuine loss, not only injected
//!   [`FaultPlan`](crate::FaultPlan)s.
//!
//! # Wire protocol
//!
//! One master connects to each worker process (the worker listens, see
//! [`serve_worker`]). After a 12-byte [`Hello`] handshake (magic + worker
//! id, echoed back by the worker), both directions carry a stream of
//! frames:
//!
//! ```text
//! [u32 LE: n = frame length] [n bytes: SessionEnvelope = 8-byte QueryId + payload]
//! ```
//!
//! TCP segments its byte stream without regard for frame boundaries, so
//! [`FrameBuffer`] reassembles explicitly: frames split at arbitrary
//! offsets, several frames coalesced into one read, and a truncated final
//! frame at EOF all decode to exact frames or a typed [`DecodeError`] —
//! never a panic (see the reassembly tests and the framed-stream fuzz
//! suite).

use crate::codec::{DecodeError, Decoder, Encoder, QueryId, SessionEnvelope, Wire};
use crate::metrics::NetworkMetrics;
use crate::runtime::{Cluster, ClusterError, Control, ReplyPark, WorkerCtx, WorkerLogic};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Size of the `u32` little-endian frame-length prefix. Socket byte
/// counters charge `payload + SessionEnvelope::HEADER_BYTES +
/// LENGTH_PREFIX_BYTES` per message — the bytes that actually cross the
/// wire (the in-process simulator charges only `payload + header`, since
/// no length prefix exists there).
pub const LENGTH_PREFIX_BYTES: usize = 4;

/// Sanity cap on a frame's length prefix; anything larger is treated as
/// stream corruption ([`DecodeError::LengthOverflow`]) rather than an
/// allocation request. Matches the codec's collection-length cap.
pub const MAX_FRAME_BYTES: usize = 1 << 28;

/// The master-side message plane: what session schedulers require from a
/// cluster, whether simulated ([`Cluster`]) or real ([`SocketTransport`]).
///
/// Semantics are those documented on [`Cluster`]'s inherent methods; the
/// real transport matches them observably — same typed errors, same
/// session demultiplexing (replies for other sessions are parked, never
/// dropped) — so schedulers cannot tell the planes apart except by
/// wall-clock behavior.
pub trait Transport: Send {
    /// Number of worker nodes.
    fn num_workers(&self) -> usize;

    /// The shared network counters.
    fn metrics(&self) -> &NetworkMetrics;

    /// Whether worker `id` is still reachable (thread running / socket
    /// connected).
    fn is_worker_alive(&self, id: usize) -> bool;

    /// Ids of workers that are no longer reachable.
    fn dead_workers(&self) -> Vec<usize> {
        (0..self.num_workers())
            .filter(|&id| !self.is_worker_alive(id))
            .collect()
    }

    /// Sends a serialized message to worker `id` on behalf of session
    /// `query`. `is_assignment` marks task-assignment messages (extra
    /// launch overhead under the simulated latency model; ignored by real
    /// transports, where the wire sets the price).
    fn send(
        &self,
        id: usize,
        query: QueryId,
        payload: Bytes,
        is_assignment: bool,
    ) -> Result<(), ClusterError>;

    /// Sends the same payload to every worker (counted once per worker).
    /// Fails on the first dead worker.
    fn broadcast(
        &self,
        query: QueryId,
        payload: &Bytes,
        is_assignment: bool,
    ) -> Result<(), ClusterError> {
        for id in 0..self.num_workers() {
            self.send(id, query, payload.clone(), is_assignment)?;
        }
        Ok(())
    }

    /// Receives the next worker reply for **any** session, blocking.
    fn recv(&self) -> Result<(usize, QueryId, Bytes), ClusterError>;

    /// Receives the next worker reply for any session, waiting at most
    /// `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Result<(usize, QueryId, Bytes), ClusterError>;

    /// Non-blocking receive: the next reply for any session if one is
    /// already waiting, else [`ClusterError::Timeout`] with a zero wait.
    fn try_recv(&self) -> Result<(usize, QueryId, Bytes), ClusterError>;

    /// Session-routed receive: blocks until the next reply owned by
    /// `query`; replies for other sessions are parked for their owners.
    fn recv_for(&self, query: QueryId) -> Result<(usize, Bytes), ClusterError>;

    /// Session-routed receive with a deadline.
    fn recv_for_timeout(
        &self,
        query: QueryId,
        timeout: Duration,
    ) -> Result<(usize, Bytes), ClusterError>;

    /// Shuts the message plane down: workers are told to stop (simulated)
    /// or disconnected (sockets), and transport threads are joined.
    /// Idempotent.
    fn shutdown(&mut self);
}

impl Transport for Cluster {
    fn num_workers(&self) -> usize {
        Cluster::num_workers(self)
    }
    fn metrics(&self) -> &NetworkMetrics {
        Cluster::metrics(self)
    }
    fn is_worker_alive(&self, id: usize) -> bool {
        Cluster::is_worker_alive(self, id)
    }
    fn send(
        &self,
        id: usize,
        query: QueryId,
        payload: Bytes,
        is_assignment: bool,
    ) -> Result<(), ClusterError> {
        Cluster::send(self, id, query, payload, is_assignment)
    }
    fn recv(&self) -> Result<(usize, QueryId, Bytes), ClusterError> {
        Cluster::recv(self)
    }
    fn recv_timeout(&self, timeout: Duration) -> Result<(usize, QueryId, Bytes), ClusterError> {
        Cluster::recv_timeout(self, timeout)
    }
    fn try_recv(&self) -> Result<(usize, QueryId, Bytes), ClusterError> {
        Cluster::try_recv(self)
    }
    fn recv_for(&self, query: QueryId) -> Result<(usize, Bytes), ClusterError> {
        Cluster::recv_for(self, query)
    }
    fn recv_for_timeout(
        &self,
        query: QueryId,
        timeout: Duration,
    ) -> Result<(usize, Bytes), ClusterError> {
        Cluster::recv_for_timeout(self, query, timeout)
    }
    fn shutdown(&mut self) {
        self.shutdown_in_place();
    }
}

/// Prepends the `u32` little-endian length prefix to a framed
/// [`SessionEnvelope`]: the exact bytes one message occupies on a socket.
pub fn frame_with_prefix(query: QueryId, payload: &[u8]) -> Vec<u8> {
    let framed = SessionEnvelope::frame(query, payload);
    let mut buf = Vec::with_capacity(LENGTH_PREFIX_BYTES + framed.len());
    buf.extend_from_slice(&(framed.len() as u32).to_le_bytes());
    buf.extend_from_slice(&framed);
    buf
}

/// Reassembles [`SessionEnvelope`] frames from an arbitrarily-segmented
/// byte stream.
///
/// Push every `read()` result in with [`FrameBuffer::push`], then drain
/// complete frames with [`FrameBuffer::next_frame`]; at EOF,
/// [`FrameBuffer::finish`] turns leftover bytes — a frame the peer never
/// finished writing — into a typed [`DecodeError::Truncated`] instead of
/// silently discarding them.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends raw bytes as they arrived from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether no partial frame is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Extracts the next complete frame, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes"; errors are stream corruption
    /// (an insane length prefix, or a frame too short to carry its
    /// session header) and poison the connection — the stream cannot be
    /// resynchronized past a corrupt length prefix.
    pub fn next_frame(&mut self) -> Result<Option<SessionEnvelope>, DecodeError> {
        if self.buf.len() < LENGTH_PREFIX_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(DecodeError::LengthOverflow(len as u64));
        }
        if len < SessionEnvelope::HEADER_BYTES {
            // Every frame carries at least its 8-byte session id.
            return Err(DecodeError::Truncated {
                needed: SessionEnvelope::HEADER_BYTES,
                available: len,
            });
        }
        if self.buf.len() < LENGTH_PREFIX_BYTES + len {
            return Ok(None);
        }
        let env =
            SessionEnvelope::unframe(&self.buf[LENGTH_PREFIX_BYTES..LENGTH_PREFIX_BYTES + len])?;
        self.buf.drain(..LENGTH_PREFIX_BYTES + len);
        Ok(Some(env))
    }

    /// Declares the stream ended. Leftover bytes mean the final frame was
    /// truncated mid-write — a typed error, never a silent drop.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let needed = if self.buf.len() < LENGTH_PREFIX_BYTES {
            LENGTH_PREFIX_BYTES
        } else {
            let len =
                u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
            LENGTH_PREFIX_BYTES + len
        };
        Err(DecodeError::Truncated {
            needed,
            available: self.buf.len(),
        })
    }
}

/// Address of one worker process: a TCP host:port, or (on Unix) a
/// filesystem socket path written as `unix:/path/to.sock`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerAddr {
    /// TCP `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl std::str::FromStr for WorkerAddr {
    type Err = String;
    fn from_str(s: &str) -> Result<WorkerAddr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                if path.is_empty() {
                    return Err("empty unix socket path".into());
                }
                return Ok(WorkerAddr::Unix(std::path::PathBuf::from(path)));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err("unix sockets are not available on this platform".into());
            }
        }
        if s.is_empty() {
            return Err("empty address".into());
        }
        Ok(WorkerAddr::Tcp(s.to_string()))
    }
}

impl fmt::Display for WorkerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerAddr::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            WorkerAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A listening socket of either family, for the worker side.
pub enum WireListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl WireListener {
    /// Binds a listener on `addr`. For TCP, port 0 picks a free port —
    /// see [`WireListener::local_addr`] for the resolved one.
    pub fn bind(addr: &WorkerAddr) -> std::io::Result<WireListener> {
        match addr {
            WorkerAddr::Tcp(a) => Ok(WireListener::Tcp(TcpListener::bind(a)?)),
            #[cfg(unix)]
            WorkerAddr::Unix(path) => Ok(WireListener::Unix(UnixListener::bind(path)?)),
        }
    }

    /// Accepts one master connection.
    pub fn accept(&self) -> std::io::Result<WireStream> {
        match self {
            WireListener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(WireStream::Tcp(stream))
            }
            #[cfg(unix)]
            WireListener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(WireStream::Unix(stream))
            }
        }
    }

    /// The bound address, printable in the `--connect` syntax.
    pub fn local_addr(&self) -> std::io::Result<WorkerAddr> {
        match self {
            WireListener::Tcp(l) => Ok(WorkerAddr::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            WireListener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr.as_pathname().ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "unnamed unix socket")
                })?;
                Ok(WorkerAddr::Unix(path.to_path_buf()))
            }
        }
    }
}

/// A connected byte stream of either family.
pub enum WireStream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl WireStream {
    /// Connects to a listening worker.
    pub fn connect(addr: &WorkerAddr) -> std::io::Result<WireStream> {
        match addr {
            WorkerAddr::Tcp(a) => {
                let stream = TcpStream::connect(a)?;
                // Protocol frames are small; Nagle's algorithm would add
                // round-trip-scale delays to every exchange.
                stream.set_nodelay(true)?;
                Ok(WireStream::Tcp(stream))
            }
            #[cfg(unix)]
            WorkerAddr::Unix(path) => Ok(WireStream::Unix(UnixStream::connect(path)?)),
        }
    }

    /// A second handle to the same connection (separate read/write
    /// ownership, e.g. a reader thread plus a writer).
    pub fn try_clone(&self) -> std::io::Result<WireStream> {
        match self {
            WireStream::Tcp(s) => Ok(WireStream::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            WireStream::Unix(s) => Ok(WireStream::Unix(s.try_clone()?)),
        }
    }

    /// Severs both directions; blocked reads on other clones return EOF.
    /// Errors are ignored — the peer may already be gone.
    pub fn shutdown_both(&self) {
        match self {
            WireStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            WireStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            WireStream::Unix(s) => s.flush(),
        }
    }
}

/// The connection handshake: the master sends it right after connecting,
/// the worker validates and echoes it back verbatim. The magic folds a
/// protocol version into its low byte — bump it on any incompatible frame
/// change — so a mismatched or non-pqopt peer fails the handshake with a
/// typed error instead of desynchronizing the frame stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// The worker id the master assigns to this connection (its index in
    /// the `--connect` list); the worker adopts it.
    pub worker_id: u64,
}

impl Hello {
    /// `b"MPQ1"` read as a little-endian `u32`.
    pub const MAGIC: u32 = u32::from_le_bytes(*b"MPQ1");
    /// Encoded size: the magic plus the worker id. `xtask lint` checks
    /// this against the field widths [`Wire::encode`] actually writes.
    pub const WIRE_SIZE: usize = 12;
}

impl Wire for Hello {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(Hello::MAGIC);
        enc.put_u64(self.worker_id);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let magic = dec.get_u32()?;
        if magic != Hello::MAGIC {
            return Err(DecodeError::BadTag {
                tag: (magic & 0xFF) as u8,
                ty: "Hello",
            });
        }
        Ok(Hello {
            worker_id: dec.get_u64()?,
        })
    }
}

/// Highest worker id [`serve_worker`] accepts in a handshake: ids index
/// per-worker metric vectors, so an insane id from a corrupt or hostile
/// master must not drive an allocation.
const MAX_HANDSHAKE_WORKER_ID: u64 = 4096;

/// The real message plane: one socket per worker process, master side.
///
/// Construction connects and handshakes every worker eagerly
/// ([`SocketTransport::connect`]); a per-connection reader thread then
/// reassembles reply frames into a shared inbox, so the blocking receive
/// methods mirror the simulator's channel semantics exactly — including
/// [`ClusterError::AllWorkersLost`] when every reader has exited and the
/// inbox is drained.
pub struct SocketTransport {
    writers: Vec<Mutex<WireStream>>,
    alive: Vec<Arc<AtomicBool>>,
    inbox: Receiver<(usize, SessionEnvelope)>,
    readers: Vec<JoinHandle<()>>,
    metrics: Arc<NetworkMetrics>,
    parked: ReplyPark,
}

impl SocketTransport {
    /// Connects to one listening worker process per address; the position
    /// in `addrs` becomes the worker id, carried to the worker in the
    /// [`Hello`] handshake.
    ///
    /// Any refused connection or failed handshake aborts construction
    /// with [`ClusterError::SpawnFailed`] for that worker — a cluster
    /// that never fully forms is an error, matching thread-spawn
    /// semantics. An empty address list is `SpawnFailed { worker: 0 }`.
    pub fn connect(addrs: &[WorkerAddr]) -> Result<SocketTransport, ClusterError> {
        if addrs.is_empty() {
            return Err(ClusterError::SpawnFailed { worker: 0 });
        }
        let metrics = Arc::new(NetworkMetrics::with_workers(addrs.len()));
        let (tx, inbox) = unbounded::<(usize, SessionEnvelope)>();
        let mut writers = Vec::with_capacity(addrs.len());
        let mut alive = Vec::with_capacity(addrs.len());
        let mut readers = Vec::with_capacity(addrs.len());
        for (id, addr) in addrs.iter().enumerate() {
            let spawn_failed = |_| ClusterError::SpawnFailed { worker: id };
            let mut stream = WireStream::connect(addr).map_err(spawn_failed)?;
            handshake_as_master(&mut stream, id as u64).map_err(spawn_failed)?;
            let reader = stream.try_clone().map_err(spawn_failed)?;
            let flag = Arc::new(AtomicBool::new(true));
            let thread = {
                let tx = tx.clone();
                let flag = Arc::clone(&flag);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("mpq-socket-reader-{id}"))
                    .spawn(move || reader_loop(id, reader, &tx, &flag, &metrics))
                    .map_err(spawn_failed)?
            };
            writers.push(Mutex::new(stream));
            alive.push(flag);
            readers.push(thread);
        }
        // The masters' own sender clone is dropped here, so the inbox
        // disconnects exactly when every reader thread has exited —
        // the socket analogue of "all worker threads terminated".
        drop(tx);
        Ok(SocketTransport {
            writers,
            alive,
            inbox,
            readers,
            metrics,
            parked: ReplyPark::new(),
        })
    }

    fn mark_dead(&self, id: usize) {
        self.alive[id].store(false, Ordering::Release);
    }

    fn open(&self, worker: usize, env: SessionEnvelope) -> (usize, QueryId, Bytes) {
        (worker, env.query, env.payload)
    }
}

impl Transport for SocketTransport {
    fn num_workers(&self) -> usize {
        self.writers.len()
    }

    fn metrics(&self) -> &NetworkMetrics {
        &self.metrics
    }

    fn is_worker_alive(&self, id: usize) -> bool {
        self.alive[id].load(Ordering::Acquire)
    }

    fn send(
        &self,
        id: usize,
        query: QueryId,
        payload: Bytes,
        _is_assignment: bool,
    ) -> Result<(), ClusterError> {
        if !self.is_worker_alive(id) {
            return Err(ClusterError::WorkerLost { worker: id });
        }
        let frame = frame_with_prefix(query, &payload);
        let mut writer = self.writers[id]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match writer.write_all(&frame).and_then(|()| writer.flush()) {
            Ok(()) => {
                self.metrics.record_to_worker(frame.len() as u64);
                Ok(())
            }
            Err(_) => {
                // A failed write is how a real master observes worker
                // death; sever the connection so the reader exits too.
                writer.shutdown_both();
                drop(writer);
                self.mark_dead(id);
                Err(ClusterError::WorkerLost { worker: id })
            }
        }
    }

    fn recv(&self) -> Result<(usize, QueryId, Bytes), ClusterError> {
        if let Some(reply) = self.parked.take_any() {
            return Ok(reply);
        }
        let (id, env) = self
            .inbox
            .recv()
            .map_err(|_| ClusterError::AllWorkersLost)?;
        Ok(self.open(id, env))
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(usize, QueryId, Bytes), ClusterError> {
        if let Some(reply) = self.parked.take_any() {
            return Ok(reply);
        }
        match self.inbox.recv_timeout(timeout) {
            Ok((id, env)) => Ok(self.open(id, env)),
            Err(RecvTimeoutError::Timeout) => Err(ClusterError::Timeout { waited: timeout }),
            Err(RecvTimeoutError::Disconnected) => Err(ClusterError::AllWorkersLost),
        }
    }

    fn try_recv(&self) -> Result<(usize, QueryId, Bytes), ClusterError> {
        if let Some(reply) = self.parked.take_any() {
            return Ok(reply);
        }
        use std::sync::mpsc::TryRecvError;
        match self.inbox.try_recv() {
            Ok((id, env)) => Ok(self.open(id, env)),
            Err(TryRecvError::Empty) => Err(ClusterError::Timeout {
                waited: Duration::ZERO,
            }),
            Err(TryRecvError::Disconnected) => Err(ClusterError::AllWorkersLost),
        }
    }

    fn recv_for(&self, query: QueryId) -> Result<(usize, Bytes), ClusterError> {
        if let Some(reply) = self.parked.take(query) {
            return Ok(reply);
        }
        loop {
            let (id, env) = self
                .inbox
                .recv()
                .map_err(|_| ClusterError::AllWorkersLost)?;
            let (worker, qid, payload) = self.open(id, env);
            if qid == query {
                return Ok((worker, payload));
            }
            self.parked.park(qid, worker, payload);
        }
    }

    fn recv_for_timeout(
        &self,
        query: QueryId,
        timeout: Duration,
    ) -> Result<(usize, Bytes), ClusterError> {
        if let Some(reply) = self.parked.take(query) {
            return Ok(reply);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClusterError::Timeout { waited: timeout });
            }
            match self.inbox.recv_timeout(remaining) {
                Ok((id, env)) => {
                    let (worker, qid, payload) = self.open(id, env);
                    if qid == query {
                        return Ok((worker, payload));
                    }
                    self.parked.park(qid, worker, payload);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(ClusterError::Timeout { waited: timeout })
                }
                Err(RecvTimeoutError::Disconnected) => return Err(ClusterError::AllWorkersLost),
            }
        }
    }

    fn shutdown(&mut self) {
        for (id, writer) in self.writers.iter().enumerate() {
            writer
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .shutdown_both();
            self.mark_dead(id);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        Transport::shutdown(self);
    }
}

/// Master side of the [`Hello`] handshake: send, then require the
/// worker's verbatim echo.
fn handshake_as_master(stream: &mut WireStream, worker_id: u64) -> std::io::Result<()> {
    let hello = Hello { worker_id }.to_bytes();
    stream.write_all(&hello)?;
    stream.flush()?;
    let mut echo = [0u8; Hello::WIRE_SIZE];
    stream.read_exact(&mut echo)?;
    if echo[..] != hello[..] {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "worker handshake echo mismatch",
        ));
    }
    Ok(())
}

/// Per-connection reader: reassemble reply frames, count their wire
/// bytes, forward them to the shared inbox. Exits — marking the worker
/// dead — on EOF, any I/O error, or stream corruption (a corrupt length
/// prefix cannot be resynchronized past).
fn reader_loop(
    worker: usize,
    mut stream: WireStream,
    tx: &Sender<(usize, SessionEnvelope)>,
    alive: &AtomicBool,
    metrics: &NetworkMetrics,
) {
    let mut fb = FrameBuffer::new();
    let mut buf = vec![0u8; 64 * 1024];
    'stream: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break 'stream,
            Ok(n) => n,
        };
        fb.push(&buf[..n]);
        loop {
            match fb.next_frame() {
                Ok(Some(env)) => {
                    let wire_bytes =
                        env.payload.len() + SessionEnvelope::HEADER_BYTES + LENGTH_PREFIX_BYTES;
                    metrics.record_reply(worker, wire_bytes as u64);
                    if tx.send((worker, env)).is_err() {
                        // The master dropped its inbox: shutdown path.
                        break 'stream;
                    }
                }
                Ok(None) => break,
                Err(_) => break 'stream,
            }
        }
    }
    alive.store(false, Ordering::Release);
}

/// Runs one worker **process**: accepts a single master connection on
/// `listener`, handshakes, then delivers every inbound frame to `logic` —
/// the same [`WorkerLogic`] the in-process [`Cluster`] drives, so the
/// algorithm crates' worker code runs unmodified over real sockets.
///
/// Returns when the logic requests [`Control::Shutdown`] or the master
/// disconnects cleanly (EOF on a frame boundary). A truncated final
/// frame, a corrupt length prefix, or a bad handshake yield
/// `InvalidData` errors carrying the typed [`DecodeError`].
pub fn serve_worker<L: WorkerLogic>(listener: &WireListener, mut logic: L) -> std::io::Result<()> {
    let mut reader = listener.accept()?;
    let mut writer = reader.try_clone()?;

    let mut hello_buf = [0u8; Hello::WIRE_SIZE];
    reader.read_exact(&mut hello_buf)?;
    let hello = Hello::from_bytes(&hello_buf).map_err(invalid_data)?;
    if hello.worker_id > MAX_HANDSHAKE_WORKER_ID {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("handshake worker id {} exceeds the cap", hello.worker_id),
        ));
    }
    writer.write_all(&hello_buf)?;
    writer.flush()?;

    let worker_id = hello.worker_id as usize;
    // Worker-side ledger: sized so this worker's own reply counters index
    // validly. The master keeps its own authoritative ledger.
    let metrics = Arc::new(NetworkMetrics::with_workers(worker_id + 1));
    let mut ctx = WorkerCtx::for_stream(worker_id, metrics, Box::new(writer));

    let mut fb = FrameBuffer::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = reader.read(&mut buf)?;
        if n == 0 {
            // Clean EOF only on a frame boundary; otherwise the master
            // died mid-write and the partial frame is typed corruption.
            return fb.finish().map_err(invalid_data);
        }
        fb.push(&buf[..n]);
        while let Some(env) = fb.next_frame().map_err(invalid_data)? {
            ctx.set_current_query(env.query);
            if logic.on_message(env.query, env.payload, &mut ctx) == Control::Shutdown {
                return Ok(());
            }
        }
    }
}

fn invalid_data(e: DecodeError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}
