//! Latency and overhead model.
//!
//! The paper stresses that its cluster is "a very challenging scenario for
//! parallelization due to high communication cost and setup overhead".
//! This model charges each simulated message a delay composed of a
//! per-message latency (network round trip), a per-KiB transfer time, and
//! an additional task-launch overhead for task-assignment messages (Spark
//! executor task setup). The receiving node sleeps for the computed delay
//! before processing, so delays overlap across workers exactly as real
//! network transfers would.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configurable message-delay model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Flat latency per message, in microseconds.
    pub per_message_us: u64,
    /// Transfer time per KiB of payload, in microseconds.
    pub per_kib_us: u64,
    /// Extra overhead charged on task-assignment messages (scheduler /
    /// executor launch), in microseconds.
    pub task_launch_us: u64,
}

impl LatencyModel {
    /// No simulated delays (unit tests, pure algorithmic measurements).
    pub const ZERO: LatencyModel = LatencyModel {
        per_message_us: 0,
        per_kib_us: 0,
        task_launch_us: 0,
    };

    /// Delays in the spirit of the paper's Spark-on-Yarn cluster, scaled
    /// down ~100× so that scaled-down experiments keep the same *relative*
    /// overhead structure: 200 µs per message, 10 µs per KiB, 2 ms task
    /// launch.
    pub fn cluster_like() -> Self {
        LatencyModel {
            per_message_us: 200,
            per_kib_us: 10,
            task_launch_us: 2000,
        }
    }

    /// Whether the model introduces any delay at all.
    pub fn is_zero(&self) -> bool {
        self.per_message_us == 0 && self.per_kib_us == 0 && self.task_launch_us == 0
    }

    /// The delay charged to a message of `bytes` bytes.
    ///
    /// Transfer time rounds *up* to the next microsecond: any nonzero
    /// payload occupies the wire for a nonzero time. (Floor division here
    /// used to charge every sub-KiB message — which is most protocol
    /// messages — zero transfer time, flattening the byte-cost curves of
    /// the experiments.)
    pub fn delay(&self, bytes: usize, is_assignment: bool) -> Duration {
        let mut us = self.per_message_us + (bytes as u64 * self.per_kib_us).div_ceil(1024);
        if is_assignment {
            us += self.task_launch_us;
        }
        Duration::from_micros(us)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::ZERO
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn zero_model_has_no_delay() {
        assert!(LatencyModel::ZERO.is_zero());
        assert_eq!(LatencyModel::ZERO.delay(1 << 20, true), Duration::ZERO);
    }

    #[test]
    fn delay_scales_with_bytes() {
        let m = LatencyModel {
            per_message_us: 100,
            per_kib_us: 10,
            task_launch_us: 0,
        };
        assert_eq!(m.delay(0, false), Duration::from_micros(100));
        assert_eq!(m.delay(1024, false), Duration::from_micros(110));
        assert_eq!(m.delay(10 * 1024, false), Duration::from_micros(200));
    }

    /// Regression (ISSUE 7 satellite): sub-KiB payloads used to floor to
    /// zero transfer time. Ceiling division pins every boundary case.
    #[test]
    fn sub_kib_payloads_are_charged_transfer_time() {
        let m = LatencyModel {
            per_message_us: 0,
            per_kib_us: 10,
            task_launch_us: 0,
        };
        // (bytes, expected transfer µs = ceil(bytes·10 / 1024))
        for (bytes, us) in [(0usize, 0u64), (1, 1), (1023, 10), (1024, 10), (1025, 11)] {
            assert_eq!(
                m.delay(bytes, false),
                Duration::from_micros(us),
                "{bytes} bytes"
            );
        }
    }

    #[test]
    fn assignment_adds_launch_overhead() {
        let m = LatencyModel {
            per_message_us: 10,
            per_kib_us: 0,
            task_launch_us: 990,
        };
        assert_eq!(m.delay(0, true), Duration::from_micros(1000));
        assert_eq!(m.delay(0, false), Duration::from_micros(10));
    }

    #[test]
    fn cluster_like_is_nonzero() {
        assert!(!LatencyModel::cluster_like().is_zero());
    }
}
