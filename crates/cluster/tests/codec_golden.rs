//! Wire-format regression tests for the `mpq_cluster` codec.
//!
//! Two layers of protection:
//!
//! 1. **Property tests** — randomized values round-trip bit-exactly through
//!    encode/decode, and every strict prefix of an encoding fails to decode
//!    (no silent truncation).
//! 2. **Golden byte vectors** — exact frozen encodings of hand-constructed
//!    values, in the MV2S tradition (fixed-width little-endian primitives,
//!    `u32` length prefixes). Any change to the wire format — field order,
//!    widths, endianness, tags — fails these tests and forces a deliberate
//!    format-version decision instead of a silent break.
//!
//! To regenerate the golden constants after an *intentional* format change:
//! `cargo test -p mpq_cluster --test codec_golden -- --ignored --nocapture`
//! and paste the printed constants below.

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mpq_cluster::{
    frame_with_prefix, DecodeError, EncodeError, Hello, Progress, QueryId, SessionEnvelope, Wire,
    LENGTH_PREFIX_BYTES,
};
use mpq_cost::{CostVector, JoinOp, Objective, Order, ScanOp};
use mpq_dp::WorkerStats;
use mpq_model::{Catalog, JoinGraph, Predicate, Query, TableSet, TableStats};
use mpq_partition::PlanSpace;
use mpq_plan::{Plan, PlanEntry, PlanNode};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Fixed values under golden protection.
// ---------------------------------------------------------------------------

fn golden_query() -> Query {
    Query {
        catalog: Catalog::from_stats(vec![
            TableStats {
                cardinality: 1000.0,
                tuple_bytes: 64.0,
                join_domain: 100.0,
            },
            TableStats {
                cardinality: 50000.0,
                tuple_bytes: 128.0,
                join_domain: 2500.0,
            },
            TableStats {
                cardinality: 8.0,
                tuple_bytes: 16.0,
                join_domain: 2.0,
            },
        ]),
        predicates: vec![
            Predicate {
                left: 0,
                right: 1,
                selectivity: 0.01,
            },
            Predicate {
                left: 1,
                right: 2,
                selectivity: 0.5,
            },
        ],
        graph: JoinGraph::Chain,
    }
}

fn golden_plan() -> Plan {
    Plan::Join {
        op: JoinOp::Hash,
        left: Box::new(Plan::Scan {
            table: 0,
            op: ScanOp::Full,
            cost: CostVector::new(1000.0, 64.0),
            cardinality: 1000.0,
        }),
        right: Box::new(Plan::Scan {
            table: 1,
            op: ScanOp::Full,
            cost: CostVector::new(50000.0, 128.0),
            cardinality: 50000.0,
        }),
        cost: CostVector::new(51500.0, 192.0),
        cardinality: 500.0,
        order: Order::OnAttribute(1),
    }
}

fn golden_entry() -> PlanEntry {
    PlanEntry::join(
        JoinOp::SortMerge,
        TableSet::from_tables([0, 1]),
        7,
        TableSet::singleton(2),
        0,
        CostVector::new(5.0, 6.0),
        Order::OnAttribute(1),
    )
}

fn golden_stats() -> WorkerStats {
    WorkerStats {
        stored_sets: 11,
        total_entries: 22,
        splits_tried: 33,
        plans_generated: 44,
        optimize_micros: 55,
        threads_used: 66,
    }
}

fn golden_scan_node() -> PlanNode {
    PlanNode::Scan {
        table: 2,
        op: ScanOp::Full,
    }
}

fn golden_join_node() -> PlanNode {
    PlanNode::Join {
        op: JoinOp::Hash,
        left: TableSet::from_tables([0, 1]),
        left_idx: 7,
        right: TableSet::singleton(2),
        right_idx: 0,
    }
}

fn golden_progress() -> Progress {
    Progress {
        first_partition: 5,
        completed: 2,
        partition_count: 8,
    }
}

// ---------------------------------------------------------------------------
// Frozen encodings. Regenerate only on a deliberate wire-format change.
// ---------------------------------------------------------------------------

const GOLDEN_U64: &str = "efbeadde00000000";
const GOLDEN_F64: &str = "000000000000f83f";
const GOLDEN_VEC_U64: &str = "03000000010000000000000002000000000000000300000000000000";
const GOLDEN_TABLESET: &str = "2100000000000080";
const GOLDEN_TABLESTATS: &str = "0000000000408f4000000000000050400000000000005940";
const GOLDEN_PREDICATE: &str = "0309000000000000903f";
const GOLDEN_QUERY: &str = "030000000000000000408f400000000000005040000000000000594000000000006ae8\
    400000000000006040000000000088a34000000000000020400000000000003040000000000000004002000000000\
    17b14ae47e17a843f0102000000000000e03f00";
const GOLDEN_COST_VECTOR: &str = "000000000000f83f0000000000000440";
const GOLDEN_OBJECTIVE_MULTI: &str = "010000000000002440";
const GOLDEN_PLAN: &str = "0101000000008025e94000000000000068400000000000407f400200000000000000004\
    08f4000000000000050400000000000408f4000010000000000006ae840000000000000604000000000006ae840";
const GOLDEN_PLAN_ENTRY: &str =
    "000000000000144000000000000018400201020300000000000000070000000400000\
    00000000000000000";
const GOLDEN_WORKER_STATS: &str =
    "0b00000000000000160000000000000021000000000000002c0000000000000037\
    000000000000004200000000000000";
// Session layer (multi-query cluster): the QueryId and the envelope frame
// that wraps every wire message — 8-byte LE id, then the payload verbatim.
const GOLDEN_QUERY_ID: &str = "efbeadde00000000";
const GOLDEN_ENVELOPE: &str = "2a00000000000000010203";
// Socket transport layer: the connection handshake (u32 LE magic "MPQ1",
// then the assigned worker id as LE u64) and the length-prefixed frame the
// stream transport writes (u32 LE envelope length, then the envelope).
const GOLDEN_HELLO: &str = "4d5051310700000000000000";
const GOLDEN_PREFIXED_FRAME: &str = "0b0000002a00000000000000010203";
// A Predicate whose table index exceeds the 64-table `TableSet` capacity:
// `to_bytes` emits the 0xFF poison sentinel (never a truncated index), and
// decoding it must fail typed rather than resurrect a bogus table 255.
const GOLDEN_POISONED_PREDICATE: &str = "ff09000000000000903f";
// Straggler-adaptive redistribution: the fixed-size worker progress report
// (three LE u64s: first_partition, completed, partition_count).
const GOLDEN_PROGRESS: &str = "050000000000000002000000000000000800000000000000";
// Plan-space selector (one tag byte) and the memo-reference plan nodes.
const GOLDEN_PLAN_SPACE_LINEAR: &str = "00";
const GOLDEN_PLAN_SPACE_BUSHY: &str = "01";
const GOLDEN_PLAN_NODE_SCAN: &str = "000200";
const GOLDEN_PLAN_NODE_JOIN: &str = "0101030000000000000007000000040000000000000000000000";

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn assert_golden<T: Wire + PartialEq + std::fmt::Debug>(value: &T, expected_hex: &str, what: &str) {
    let encoded = value.to_bytes();
    assert_eq!(
        hex(&encoded),
        expected_hex,
        "wire format of {what} changed — if intentional, regenerate the golden constants \
         (see module docs); if not, you just broke cross-version compatibility"
    );
    let decoded = T::from_bytes(&encoded).expect("golden bytes decode");
    assert_eq!(&decoded, value, "golden {what} did not round-trip");
}

#[test]
fn golden_primitives() {
    assert_golden(&0xDEAD_BEEFu64, GOLDEN_U64, "u64");
    assert_golden(&1.5f64, GOLDEN_F64, "f64");
    assert_golden(&vec![1u64, 2, 3], GOLDEN_VEC_U64, "Vec<u64>");
}

#[test]
fn golden_model_types() {
    assert_golden(
        &TableSet::from_tables([0, 5, 63]),
        GOLDEN_TABLESET,
        "TableSet",
    );
    assert_golden(
        &TableStats {
            cardinality: 1000.0,
            tuple_bytes: 64.0,
            join_domain: 100.0,
        },
        GOLDEN_TABLESTATS,
        "TableStats",
    );
    assert_golden(
        &Predicate {
            left: 3,
            right: 9,
            selectivity: 0.015625,
        },
        GOLDEN_PREDICATE,
        "Predicate",
    );
    assert_golden(&golden_query(), GOLDEN_QUERY, "Query");
}

#[test]
fn golden_cost_and_plan_types() {
    assert_golden(&CostVector::new(1.5, 2.5), GOLDEN_COST_VECTOR, "CostVector");
    assert_golden(
        &Objective::Multi { alpha: 10.0 },
        GOLDEN_OBJECTIVE_MULTI,
        "Objective::Multi",
    );
    assert_golden(&golden_plan(), GOLDEN_PLAN, "Plan");
    assert_golden(&golden_entry(), GOLDEN_PLAN_ENTRY, "PlanEntry");
    assert_golden(&golden_stats(), GOLDEN_WORKER_STATS, "WorkerStats");
}

#[test]
fn golden_session_layer() {
    assert_golden(&QueryId(0xDEAD_BEEF), GOLDEN_QUERY_ID, "QueryId");
    let framed = SessionEnvelope::frame(QueryId(42), &[1, 2, 3]);
    assert_eq!(
        hex(&framed),
        GOLDEN_ENVELOPE,
        "wire format of SessionEnvelope changed — if intentional, regenerate the golden \
         constants (see module docs); if not, you just broke cross-version compatibility"
    );
    let opened = SessionEnvelope::unframe(&framed).expect("golden frame opens");
    assert_eq!(opened.query, QueryId(42));
    assert_eq!(&opened.payload[..], &[1, 2, 3]);
}

#[test]
fn golden_transport_layer() {
    assert_golden(&Hello { worker_id: 7 }, GOLDEN_HELLO, "Hello");
    // Layout pins: the magic is the literal bytes "MPQ1" (version folded
    // into the magic), the id an LE u64, 12 bytes total.
    let hello = Hello { worker_id: 7 }.to_bytes();
    assert_eq!(hello.len(), Hello::WIRE_SIZE);
    assert_eq!(&hello[..4], b"MPQ1");
    assert_eq!(u64::from_le_bytes(hello[4..12].try_into().unwrap()), 7);
    // A corrupted magic fails typed — a master that dials a non-pqopt port
    // gets a decode error, not a garbage worker id.
    let mut bad = hello.to_vec();
    bad[0] ^= 0xFF;
    assert!(matches!(
        Hello::from_bytes(&bad),
        Err(DecodeError::BadTag { ty: "Hello", .. })
    ));

    // The stream framing is the u32 LE envelope length, then the envelope
    // exactly as the in-process transport would carry it.
    let framed = frame_with_prefix(QueryId(42), &[1, 2, 3]);
    assert_eq!(
        hex(&framed),
        GOLDEN_PREFIXED_FRAME,
        "wire format of the length-prefixed frame changed — if intentional, regenerate the \
         golden constants (see module docs); if not, you just broke cross-version compatibility"
    );
    let (prefix, envelope) = framed.split_at(LENGTH_PREFIX_BYTES);
    assert_eq!(
        u32::from_le_bytes(prefix.try_into().unwrap()) as usize,
        envelope.len()
    );
    assert_eq!(hex(envelope), GOLDEN_ENVELOPE);
}

/// Regression for the silent `as u8` truncation bug: a table index ≥ 64
/// must surface as a typed error on both sides of the wire, never as a
/// plausible-looking small index.
#[test]
fn golden_out_of_range_predicate() {
    let bad = Predicate {
        left: 200,
        right: 9,
        selectivity: 0.015625,
    };
    assert_eq!(
        bad.try_to_bytes(),
        Err(EncodeError::TableIndexOutOfRange { index: 200 })
    );
    // The infallible path emits the 0xFF poison sentinel in place of the
    // index (the old code emitted 200 % 256 = 0xC8, a "valid" table 8 after
    // masking downstream); pin that byte layout.
    assert_eq!(hex(&bad.to_bytes()), GOLDEN_POISONED_PREDICATE);
    assert!(matches!(
        Predicate::from_bytes(&bad.to_bytes()),
        Err(DecodeError::IndexOutOfRange {
            index: 255,
            ty: "Predicate"
        })
    ));
}

#[test]
fn golden_plan_space_and_nodes() {
    assert_golden(
        &PlanSpace::Linear,
        GOLDEN_PLAN_SPACE_LINEAR,
        "PlanSpace::Linear",
    );
    assert_golden(
        &PlanSpace::Bushy,
        GOLDEN_PLAN_SPACE_BUSHY,
        "PlanSpace::Bushy",
    );
    assert_golden(&golden_scan_node(), GOLDEN_PLAN_NODE_SCAN, "PlanNode::Scan");
    assert_golden(&golden_join_node(), GOLDEN_PLAN_NODE_JOIN, "PlanNode::Join");
    // Layout pins: PlanSpace is a single tag byte; PlanNode leads with its
    // variant tag (0 = Scan, 1 = Join).
    assert_eq!(&PlanSpace::Linear.to_bytes()[..], [0]);
    assert_eq!(&PlanSpace::Bushy.to_bytes()[..], [1]);
    assert_eq!(golden_scan_node().to_bytes()[0], 0);
    assert_eq!(golden_join_node().to_bytes()[0], 1);
}

#[test]
fn golden_progress_report() {
    assert_golden(&golden_progress(), GOLDEN_PROGRESS, "Progress");
    // Fixed-size layout: exactly three LE u64s, 24 bytes.
    let bytes = golden_progress().to_bytes();
    assert_eq!(bytes.len(), 24);
    assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), 5);
    assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 2);
    assert_eq!(u64::from_le_bytes(bytes[16..24].try_into().unwrap()), 8);
}

/// The golden query must stay byte-identical structurally: length prefix,
/// per-table stats, predicates, graph tag — this pins the *layout*, not
/// just the bytes.
#[test]
fn golden_query_layout() {
    let bytes = golden_query().to_bytes();
    // u32 LE table count.
    assert_eq!(&bytes[..4], &[3, 0, 0, 0], "leading u32 LE table count");
    // 3 tables x 3 f64 stats.
    let stats_end = 4 + 3 * 24;
    assert_eq!(
        f64::from_le_bytes(bytes[4..12].try_into().unwrap()),
        1000.0,
        "first stat is table 0 cardinality, f64 LE"
    );
    // u32 LE predicate count right after the stats.
    assert_eq!(&bytes[stats_end..stats_end + 4], &[2, 0, 0, 0]);
    // Trailing join-graph tag (Chain = 0).
    assert_eq!(*bytes.last().unwrap(), 0);
    // Total size: 4 + 72 stats + 4 + 2 predicates x 10 + 1 tag.
    assert_eq!(bytes.len(), 4 + 72 + 4 + 20 + 1);
}

/// Prints the golden constants for pasting after an intentional change.
#[test]
#[ignore = "regeneration helper, not a check"]
fn regenerate_golden_constants() {
    let pairs: Vec<(&str, String)> = vec![
        ("GOLDEN_U64", hex(&0xDEAD_BEEFu64.to_bytes())),
        ("GOLDEN_F64", hex(&1.5f64.to_bytes())),
        ("GOLDEN_VEC_U64", hex(&vec![1u64, 2, 3].to_bytes())),
        (
            "GOLDEN_TABLESET",
            hex(&TableSet::from_tables([0, 5, 63]).to_bytes()),
        ),
        (
            "GOLDEN_TABLESTATS",
            hex(&TableStats {
                cardinality: 1000.0,
                tuple_bytes: 64.0,
                join_domain: 100.0,
            }
            .to_bytes()),
        ),
        (
            "GOLDEN_PREDICATE",
            hex(&Predicate {
                left: 3,
                right: 9,
                selectivity: 0.015625,
            }
            .to_bytes()),
        ),
        ("GOLDEN_QUERY", hex(&golden_query().to_bytes())),
        (
            "GOLDEN_COST_VECTOR",
            hex(&CostVector::new(1.5, 2.5).to_bytes()),
        ),
        (
            "GOLDEN_OBJECTIVE_MULTI",
            hex(&Objective::Multi { alpha: 10.0 }.to_bytes()),
        ),
        ("GOLDEN_PLAN", hex(&golden_plan().to_bytes())),
        ("GOLDEN_PLAN_ENTRY", hex(&golden_entry().to_bytes())),
        ("GOLDEN_WORKER_STATS", hex(&golden_stats().to_bytes())),
        ("GOLDEN_QUERY_ID", hex(&QueryId(0xDEAD_BEEF).to_bytes())),
        (
            "GOLDEN_ENVELOPE",
            hex(&SessionEnvelope::frame(QueryId(42), &[1, 2, 3])),
        ),
        ("GOLDEN_HELLO", hex(&Hello { worker_id: 7 }.to_bytes())),
        (
            "GOLDEN_PREFIXED_FRAME",
            hex(&frame_with_prefix(QueryId(42), &[1, 2, 3])),
        ),
        (
            "GOLDEN_POISONED_PREDICATE",
            hex(&Predicate {
                left: 200,
                right: 9,
                selectivity: 0.015625,
            }
            .to_bytes()),
        ),
        ("GOLDEN_PROGRESS", hex(&golden_progress().to_bytes())),
        (
            "GOLDEN_PLAN_SPACE_LINEAR",
            hex(&PlanSpace::Linear.to_bytes()),
        ),
        ("GOLDEN_PLAN_SPACE_BUSHY", hex(&PlanSpace::Bushy.to_bytes())),
        ("GOLDEN_PLAN_NODE_SCAN", hex(&golden_scan_node().to_bytes())),
        ("GOLDEN_PLAN_NODE_JOIN", hex(&golden_join_node().to_bytes())),
    ];
    for (name, value) in pairs {
        println!("const {name}: &str = \"{value}\";");
    }
}

// ---------------------------------------------------------------------------
// Property tests: random values round-trip, prefixes fail.
// ---------------------------------------------------------------------------

fn arb_stats() -> impl Strategy<Value = TableStats> {
    (1.0..1e9f64, 1.0..4096.0f64, 2.0..1e6f64).prop_map(
        |(cardinality, tuple_bytes, join_domain)| TableStats {
            cardinality: cardinality.round(),
            tuple_bytes: tuple_bytes.round(),
            join_domain: join_domain.round(),
        },
    )
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec(arb_stats(), 1..12),
        prop::collection::vec((0..12usize, 0..12usize, 0.0001..1.0f64), 0..16),
        0..4usize,
    )
        .prop_map(|(stats, raw_preds, graph)| {
            let n = stats.len();
            Query {
                catalog: Catalog::from_stats(stats),
                predicates: raw_preds
                    .into_iter()
                    .map(|(left, right, selectivity)| Predicate {
                        left: left % n,
                        right: right % n,
                        selectivity,
                    })
                    .collect(),
                graph: JoinGraph::ALL[graph],
            }
        })
}

fn arb_left_deep_plan() -> impl Strategy<Value = Plan> {
    (
        prop::collection::vec((0.0..1e9f64, 0.0..1e9f64, 1.0..1e9f64), 1..8),
        0..3usize,
        0u8..5,
    )
        .prop_map(|(nodes, op_idx, order_code)| {
            let op = mpq_cost::JOIN_OPS[op_idx];
            let mut plan: Option<Plan> = None;
            for (t, (time, buffer, cardinality)) in nodes.into_iter().enumerate() {
                let scan = Plan::Scan {
                    table: t as u8,
                    op: ScanOp::Full,
                    cost: CostVector::new(time, buffer),
                    cardinality,
                };
                plan = Some(match plan {
                    None => scan,
                    Some(left) => Plan::Join {
                        op,
                        cost: CostVector::new(time * 2.0, buffer * 2.0),
                        cardinality,
                        order: Order::from_code(order_code),
                        left: Box::new(left),
                        right: Box::new(scan),
                    },
                });
            }
            plan.expect("at least one table")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn stats_roundtrip(stats in arb_stats()) {
        let back = TableStats::from_bytes(&stats.to_bytes()).unwrap();
        prop_assert_eq!(back, stats);
    }

    #[test]
    fn query_roundtrip(query in arb_query()) {
        let back = Query::from_bytes(&query.to_bytes()).unwrap();
        prop_assert_eq!(back, query);
    }

    #[test]
    fn plan_roundtrip(plan in arb_left_deep_plan()) {
        let back = Plan::from_bytes(&plan.to_bytes()).unwrap();
        prop_assert_eq!(back, plan);
    }

    #[test]
    fn cost_vector_roundtrip_bit_exact(time in prop::num::f64::NORMAL, buffer in prop::num::f64::NORMAL) {
        let v = CostVector::new(time, buffer);
        let back = CostVector::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(back.time.to_bits(), v.time.to_bits());
        prop_assert_eq!(back.buffer.to_bits(), v.buffer.to_bits());
    }

    #[test]
    fn vec_u64_roundtrip_and_length_prefix(values in prop::collection::vec(any::<u64>(), 0..64)) {
        let bytes = values.clone().to_bytes();
        prop_assert_eq!(bytes.len(), 4 + 8 * values.len(), "u32 length prefix + fixed-width items");
        let back = Vec::<u64>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, values);
    }

    /// No strict prefix of a query encoding decodes: truncation is always
    /// detected, never silently accepted.
    #[test]
    fn query_prefixes_always_fail(query in arb_query(), cut_seed in any::<u64>()) {
        let bytes = query.to_bytes();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(
            Query::from_bytes(&bytes[..cut]).is_err(),
            "prefix of {} / {} bytes decoded successfully",
            cut,
            bytes.len()
        );
    }
}
