//! Integration tests for the real byte-stream transport.
//!
//! Three layers, bottom-up:
//!
//! 1. **Frame reassembly** — [`FrameBuffer`] must reconstruct exact
//!    [`SessionEnvelope`]s from a stream split at *every* byte offset,
//!    coalesce back-to-back frames arriving in one read, and turn a
//!    truncated final frame into a typed [`DecodeError`] — never a panic,
//!    never a silent drop.
//! 2. **Loopback sockets** — a [`SocketTransport`] master against
//!    [`serve_worker`] peers over real TCP and Unix-domain sockets:
//!    echo round-trips, session demultiplexing, byte counters fed from
//!    actual wire traffic (length prefix included).
//! 3. **Connection loss** — a worker that exits mid-conversation, or a
//!    peer that violates the handshake, surfaces as the same typed
//!    [`ClusterError`]s the in-process simulator produces.

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bytes::Bytes;
use mpq_cluster::transport::MAX_FRAME_BYTES;
use mpq_cluster::{
    frame_with_prefix, serve_worker, ClusterError, Control, DecodeError, FrameBuffer, Hello,
    QueryId, SessionEnvelope, SocketTransport, Transport, Wire, WireListener, WorkerAddr,
    WorkerCtx, LENGTH_PREFIX_BYTES,
};
use std::io::{Read, Write};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Layer 1: frame reassembly.
// ---------------------------------------------------------------------------

/// Three representative frames: small payload, empty payload, longer
/// payload — concatenated as they would appear on the wire.
fn sample_frames() -> (Vec<(QueryId, Vec<u8>)>, Vec<u8>) {
    let frames = vec![
        (QueryId(1), vec![0xAA, 0xBB, 0xCC]),
        (QueryId(0xDEAD_BEEF), Vec::new()),
        (QueryId(2), (0u8..32).collect::<Vec<u8>>()),
    ];
    let mut stream = Vec::new();
    for (query, payload) in &frames {
        stream.extend_from_slice(&frame_with_prefix(*query, payload));
    }
    (frames, stream)
}

/// Drains every complete frame currently buffered.
fn drain(fb: &mut FrameBuffer) -> Vec<(QueryId, Vec<u8>)> {
    let mut out = Vec::new();
    while let Some(env) = fb.next_frame().expect("sample stream is well formed") {
        out.push((env.query, env.payload.to_vec()));
    }
    out
}

#[test]
fn frames_survive_a_split_at_every_byte_offset() {
    let (expected, stream) = sample_frames();
    for cut in 0..=stream.len() {
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        fb.push(&stream[..cut]);
        got.extend(drain(&mut fb));
        fb.push(&stream[cut..]);
        got.extend(drain(&mut fb));
        assert_eq!(got, expected, "split at byte {cut} corrupted the frames");
        assert!(fb.is_empty(), "split at byte {cut} left residue");
        fb.finish()
            .expect("clean stream end must not be a truncation");
    }
}

#[test]
fn frames_survive_byte_at_a_time_delivery() {
    let (expected, stream) = sample_frames();
    let mut fb = FrameBuffer::new();
    let mut got = Vec::new();
    for byte in &stream {
        fb.push(std::slice::from_ref(byte));
        got.extend(drain(&mut fb));
    }
    assert_eq!(got, expected);
    fb.finish().expect("clean stream end");
}

#[test]
fn coalesced_frames_in_one_read_all_drain() {
    let (expected, stream) = sample_frames();
    let mut fb = FrameBuffer::new();
    fb.push(&stream);
    assert_eq!(drain(&mut fb), expected);
    assert!(fb.is_empty());
}

#[test]
fn truncated_final_frame_is_a_typed_error() {
    let (expected, stream) = sample_frames();
    // Sever the stream at every offset that leaves a partial final frame.
    let first_two = frame_with_prefix(expected[0].0, &expected[0].1).len()
        + frame_with_prefix(expected[1].0, &expected[1].1).len();
    for cut in first_two + 1..stream.len() {
        let mut fb = FrameBuffer::new();
        fb.push(&stream[..cut]);
        assert_eq!(drain(&mut fb), expected[..2], "cut at {cut}");
        assert!(
            matches!(fb.finish(), Err(DecodeError::Truncated { .. })),
            "EOF with a partial frame at {cut} must be a typed truncation"
        );
    }
}

#[test]
fn insane_length_prefix_is_length_overflow() {
    let mut fb = FrameBuffer::new();
    fb.push(&((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
    assert!(matches!(
        fb.next_frame(),
        Err(DecodeError::LengthOverflow(_))
    ));
}

#[test]
fn runt_frame_shorter_than_session_header_is_truncated() {
    // A "frame" of 3 bytes cannot even carry its 8-byte session id.
    let mut fb = FrameBuffer::new();
    fb.push(&3u32.to_le_bytes());
    fb.push(&[1, 2, 3]);
    assert!(matches!(
        fb.next_frame(),
        Err(DecodeError::Truncated {
            needed: SessionEnvelope::HEADER_BYTES,
            available: 3,
        })
    ));
}

#[test]
fn empty_buffer_is_clean() {
    let mut fb = FrameBuffer::new();
    assert!(fb.next_frame().expect("no bytes, no error").is_none());
    fb.finish().expect("empty stream end is clean");
    assert!(fb.is_empty());
}

// ---------------------------------------------------------------------------
// Layer 2 & 3: loopback sockets.
// ---------------------------------------------------------------------------

/// Worker logic for the loopback tests: echoes every payload back on the
/// session that sent it, and shuts down on the `b"die"` payload.
fn echo_logic(_query: QueryId, payload: Bytes, ctx: &mut WorkerCtx) -> Control {
    if &payload[..] == b"die" {
        return Control::Shutdown;
    }
    ctx.send_to_master(payload);
    Control::Continue
}

/// Binds a listener, serves `echo_logic` on a background thread, and
/// returns the bound address plus the server thread handle.
fn spawn_echo_worker(
    bind: &WorkerAddr,
) -> (WorkerAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = WireListener::bind(bind).expect("bind loopback listener");
    let addr = listener.local_addr().expect("bound listener has an addr");
    let handle = std::thread::spawn(move || serve_worker(&listener, echo_logic));
    (addr, handle)
}

fn tcp_any() -> WorkerAddr {
    "127.0.0.1:0".parse().expect("tcp addr parses")
}

/// One echo round-trip plus the exact byte accounting: both directions
/// charge payload + 8-byte session header + 4-byte length prefix — the
/// bytes that actually crossed the socket.
fn roundtrip_and_count(master: &SocketTransport) {
    let payload = Bytes::from_static(&[1, 2, 3]);
    let wire_bytes = (payload.len() + SessionEnvelope::HEADER_BYTES + LENGTH_PREFIX_BYTES) as u64;
    master
        .send(0, QueryId(7), payload.clone(), true)
        .expect("send to live worker");
    let (worker, got) = master
        .recv_for_timeout(QueryId(7), Duration::from_secs(10))
        .expect("echo reply arrives");
    assert_eq!(worker, 0);
    assert_eq!(got, payload);
    let snap = master.metrics().snapshot();
    assert_eq!(snap.master_to_worker_bytes, wire_bytes);
    assert_eq!(snap.worker_to_master_bytes, wire_bytes);
}

/// Replies for other sessions are parked, never dropped: ask for the
/// *second* session's reply first.
fn sessions_demultiplex(master: &SocketTransport) {
    let (q1, q2) = (QueryId(101), QueryId(202));
    master
        .send(0, q1, Bytes::from_static(b"first"), false)
        .expect("send q1");
    master
        .send(0, q2, Bytes::from_static(b"second"), false)
        .expect("send q2");
    let (_, got2) = master
        .recv_for_timeout(q2, Duration::from_secs(10))
        .expect("q2 routed past q1's parked reply");
    assert_eq!(&got2[..], b"second");
    let (_, got1) = master
        .recv_for_timeout(q1, Duration::from_secs(10))
        .expect("q1's parked reply is still owed");
    assert_eq!(&got1[..], b"first");
}

/// Tells the worker to exit, then checks that loss is typed: sends fail
/// with `WorkerLost`, blocking receives report `AllWorkersLost` (the
/// single worker is gone), and the liveness probes agree.
fn death_is_typed(mut master: SocketTransport) {
    master
        .send(0, QueryId(9), Bytes::from_static(b"die"), false)
        .expect("the kill message still goes out");
    // The reader thread notices the close asynchronously; the blocking
    // receive is the synchronization point.
    match master.recv_for_timeout(QueryId(9), Duration::from_secs(10)) {
        Err(ClusterError::AllWorkersLost) => {}
        other => panic!("expected AllWorkersLost, got {other:?}"),
    }
    assert!(!master.is_worker_alive(0));
    assert_eq!(master.dead_workers(), vec![0]);
    assert!(matches!(
        master.send(0, QueryId(9), Bytes::from_static(b"x"), false),
        Err(ClusterError::WorkerLost { worker: 0 })
    ));
    master.shutdown();
}

fn exercise_loopback(bind: &WorkerAddr) {
    let (addr, server) = spawn_echo_worker(bind);
    let master =
        SocketTransport::connect(std::slice::from_ref(&addr)).expect("connect to loopback worker");
    assert_eq!(master.num_workers(), 1);
    assert!(master.is_worker_alive(0));
    roundtrip_and_count(&master);
    sessions_demultiplex(&master);
    // An idle session times out typed instead of stealing another
    // session's reply.
    assert!(matches!(
        master.recv_for_timeout(QueryId(999), Duration::from_millis(10)),
        Err(ClusterError::Timeout { .. })
    ));
    death_is_typed(master);
    server
        .join()
        .expect("worker thread")
        .expect("worker exits cleanly on Control::Shutdown");
}

#[test]
fn tcp_loopback_echo_sessions_and_loss() {
    exercise_loopback(&tcp_any());
}

#[cfg(unix)]
#[test]
fn unix_loopback_echo_sessions_and_loss() {
    let path = std::env::temp_dir().join(format!("mpq-transport-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let addr: WorkerAddr = format!("unix:{}", path.display())
        .parse()
        .expect("unix addr parses");
    exercise_loopback(&addr);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn two_workers_survive_one_death() {
    let (addr_a, server_a) = spawn_echo_worker(&tcp_any());
    let (addr_b, server_b) = spawn_echo_worker(&tcp_any());
    let mut master = SocketTransport::connect(&[addr_a, addr_b]).expect("connect both");
    assert_eq!(master.num_workers(), 2);

    master
        .send(0, QueryId(1), Bytes::from_static(b"die"), false)
        .expect("kill worker 0");
    // Worker 1 keeps answering while worker 0's death propagates.
    master
        .send(1, QueryId(1), Bytes::from_static(b"ping"), false)
        .expect("worker 1 is alive");
    let (worker, got) = master
        .recv_for_timeout(QueryId(1), Duration::from_secs(10))
        .expect("survivor echoes");
    assert_eq!((worker, &got[..]), (1, &b"ping"[..]));

    // The dead worker is reported individually; the cluster is not lost.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while master.is_worker_alive(0) {
        assert!(
            std::time::Instant::now() < deadline,
            "worker 0's death never surfaced"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(master.dead_workers(), vec![0]);
    assert!(matches!(
        master.send(0, QueryId(2), Bytes::from_static(b"x"), false),
        Err(ClusterError::WorkerLost { worker: 0 })
    ));
    master
        .send(1, QueryId(2), Bytes::from_static(b"still here"), false)
        .expect("survivor still reachable");
    let (_, got) = master
        .recv_for_timeout(QueryId(2), Duration::from_secs(10))
        .expect("survivor still echoes");
    assert_eq!(&got[..], b"still here");

    master.shutdown();
    server_a
        .join()
        .expect("worker 0 thread")
        .expect("clean exit");
    server_b
        .join()
        .expect("worker 1 thread")
        .expect("clean exit");
}

#[test]
fn empty_address_list_is_spawn_failed() {
    assert!(matches!(
        SocketTransport::connect(&[]),
        Err(ClusterError::SpawnFailed { worker: 0 })
    ));
}

#[test]
fn refused_connection_is_spawn_failed() {
    // Bind-then-drop guarantees a port with no listener behind it.
    let addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        WorkerAddr::Tcp(probe.local_addr().expect("probe addr").to_string())
    };
    assert!(matches!(
        SocketTransport::connect(std::slice::from_ref(&addr)),
        Err(ClusterError::SpawnFailed { worker: 0 })
    ));
}

/// A peer that mangles the handshake echo is rejected at construction —
/// the master never mistakes an arbitrary service for a worker.
#[test]
fn corrupted_handshake_echo_is_spawn_failed() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = WorkerAddr::Tcp(listener.local_addr().expect("addr").to_string());
    let impostor = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().expect("accept");
        let mut hello = [0u8; Hello::WIRE_SIZE];
        sock.read_exact(&mut hello).expect("read hello");
        hello[0] ^= 0xFF; // corrupt the magic before echoing
        sock.write_all(&hello).expect("write mangled echo");
    });
    assert!(matches!(
        SocketTransport::connect(std::slice::from_ref(&addr)),
        Err(ClusterError::SpawnFailed { worker: 0 })
    ));
    impostor.join().expect("impostor thread");
}

/// `serve_worker` rejects a client that opens with the wrong magic: the
/// typed decode error travels up as `InvalidData`.
#[test]
fn serve_worker_rejects_bad_magic() {
    let listener = WireListener::bind(&tcp_any()).expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || serve_worker(&listener, echo_logic));
    let WorkerAddr::Tcp(tcp) = &addr else {
        panic!("bound a tcp listener");
    };
    let mut sock = std::net::TcpStream::connect(tcp).expect("connect raw");
    sock.write_all(b"NOTMPQ1XXXXX")
        .expect("write garbage hello");
    let err = server
        .join()
        .expect("server thread")
        .expect_err("bad magic must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

/// A master that dies mid-frame leaves the worker with a typed
/// truncation, not a silently-absorbed partial message.
#[test]
fn serve_worker_types_a_truncated_final_frame() {
    let listener = WireListener::bind(&tcp_any()).expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || serve_worker(&listener, echo_logic));
    let WorkerAddr::Tcp(tcp) = &addr else {
        panic!("bound a tcp listener");
    };
    let mut sock = std::net::TcpStream::connect(tcp).expect("connect raw");
    // Complete the handshake honestly...
    let hello = Hello { worker_id: 0 }.to_bytes();
    sock.write_all(&hello).expect("write hello");
    let mut echo = [0u8; Hello::WIRE_SIZE];
    sock.read_exact(&mut echo).expect("read echo");
    assert_eq!(&echo[..], &hello[..]);
    // ...then die mid-write: a full prefix announcing 64 bytes, only 5 sent.
    sock.write_all(&64u32.to_le_bytes()).expect("write prefix");
    sock.write_all(&[1, 2, 3, 4, 5])
        .expect("write partial frame");
    drop(sock);
    let err = server
        .join()
        .expect("server thread")
        .expect_err("truncated frame must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}
