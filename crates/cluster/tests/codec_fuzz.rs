//! Codec robustness fuzzing: the `Decoder` must never panic, whatever
//! bytes arrive.
//!
//! Complements `codec_golden.rs` (which pins the format of *valid*
//! encodings): these property tests feed the decoder arbitrary byte
//! soup, truncated valid encodings and bit-flipped valid encodings for
//! every `Wire` type, and require that decoding always returns — `Ok` on
//! a well-formed prefix, `DecodeError` otherwise, never a panic, hang or
//! unbounded allocation. This is the trust boundary of the simulated
//! network: a faulty or malicious worker reply must surface as a typed
//! error at the master, not a crash.

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mpq_cluster::{frame_with_prefix, FrameBuffer, Hello, QueryId, Wire};
use mpq_cost::{CostVector, JoinOp, Objective, Order, ScanOp};
use mpq_dp::WorkerStats;
use mpq_model::{
    JoinGraph, Predicate, Query, TableSet, TableStats, WorkloadConfig, WorkloadGenerator,
};
use mpq_partition::PlanSpace;
use mpq_plan::{Plan, PlanEntry, PlanNode};
use proptest::prelude::*;

/// Case count: `PROPTEST_CASES` (as in the CI chaos job) or the default.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs every `Wire` decoder over `data`; panics (failing the test) only
/// if a decoder itself panics. Results are deliberately discarded: both
/// `Ok` and `Err` are acceptable outcomes for hostile bytes.
fn decode_all(data: &[u8]) {
    let _ = u64::from_bytes(data);
    let _ = f64::from_bytes(data);
    let _ = Vec::<u64>::from_bytes(data);
    let _ = TableSet::from_bytes(data);
    let _ = TableStats::from_bytes(data);
    let _ = Predicate::from_bytes(data);
    let _ = JoinGraph::from_bytes(data);
    let _ = Query::from_bytes(data);
    let _ = CostVector::from_bytes(data);
    let _ = Order::from_bytes(data);
    let _ = ScanOp::from_bytes(data);
    let _ = JoinOp::from_bytes(data);
    let _ = PlanSpace::from_bytes(data);
    let _ = Objective::from_bytes(data);
    let _ = Plan::from_bytes(data);
    let _ = Vec::<Plan>::from_bytes(data);
    let _ = PlanNode::from_bytes(data);
    let _ = PlanEntry::from_bytes(data);
    let _ = Vec::<PlanEntry>::from_bytes(data);
    let _ = WorkerStats::from_bytes(data);
    let _ = Hello::from_bytes(data);
}

/// Runs the stream reassembler over `data` delivered in `chunk`-byte
/// reads, as a socket might segment it. Decoded frames and typed errors
/// are both fine; panics and unbounded allocation are not. Pure
/// in-memory — no sockets — so it runs under Miri like the rest of this
/// suite.
fn reassemble_all(data: &[u8], chunk: usize) {
    let mut fb = FrameBuffer::new();
    for piece in data.chunks(chunk.max(1)) {
        fb.push(piece);
        loop {
            match fb.next_frame() {
                Ok(Some(env)) => decode_all(&env.payload),
                Ok(None) => break,
                // Corrupt prefix: the stream is poisoned, as a real
                // reader would treat it.
                Err(_) => return,
            }
        }
    }
    let _ = fb.finish();
}

/// A valid, content-rich encoding to truncate and mutate: a generated
/// query plus a full optimal plan for it.
fn valid_encodings(seed: u64, n: usize) -> Vec<Vec<u8>> {
    let q = WorkloadGenerator::new(WorkloadConfig::paper_default(n), seed).next_query();
    let out = mpq_dp::optimize_serial(&q, PlanSpace::Linear, mpq_cost::Objective::Single);
    vec![
        q.to_bytes().to_vec(),
        out.plans[0].to_bytes().to_vec(),
        out.stats.to_bytes().to_vec(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(128)))]

    /// Arbitrary byte soup: every decoder returns instead of panicking.
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..600)) {
        decode_all(&data);
    }

    /// Truncations of valid encodings: never a panic, and a *strict*
    /// truncation of a query encoding never decodes as a full query.
    #[test]
    fn truncated_encodings_never_panic(
        seed in any::<u64>(),
        n in 1usize..=6,
        cut_frac in 0.0..1.0f64,
    ) {
        for bytes in valid_encodings(seed, n) {
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            decode_all(&bytes[..cut.min(bytes.len())]);
        }
        // The full (untruncated) query encoding must stay decodable.
        let q = WorkloadGenerator::new(WorkloadConfig::paper_default(n), seed).next_query();
        prop_assert!(Query::from_bytes(&q.to_bytes()).is_ok());
        let strict = q.to_bytes();
        prop_assert!(Query::from_bytes(&strict[..strict.len() - 1]).is_err());
    }

    /// Bit-flipped valid encodings: a single corrupted bit anywhere in a
    /// golden-style payload yields `Ok` or `DecodeError`, never a panic.
    #[test]
    fn mutated_encodings_never_panic(
        seed in any::<u64>(),
        n in 1usize..=6,
        pos_frac in 0.0..1.0f64,
        bit in 0u8..8,
    ) {
        for bytes in valid_encodings(seed, n) {
            let mut mutated = bytes.clone();
            let pos = ((mutated.len() as f64) * pos_frac) as usize;
            let pos = pos.min(mutated.len() - 1);
            mutated[pos] ^= 1 << bit;
            decode_all(&mutated);
        }
    }

    /// Length-prefix bombs: a huge or lying collection length either
    /// fails the sanity cap or runs out of bytes — bounded time and
    /// allocation, no panic.
    #[test]
    fn hostile_length_prefixes_never_panic(len in any::<u32>(), tail in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut data = len.to_le_bytes().to_vec();
        data.extend_from_slice(&tail);
        decode_all(&data);
    }

    /// Framed-stream soup: arbitrary bytes through the socket-transport
    /// reassembler at an arbitrary read granularity — typed errors or
    /// frames, never a panic.
    #[test]
    fn arbitrary_framed_streams_never_panic(
        data in prop::collection::vec(any::<u8>(), 0..600),
        chunk in 1usize..64,
    ) {
        reassemble_all(&data, chunk);
    }

    /// Well-formed frame sequences survive any read segmentation: every
    /// frame comes back exactly once, in order, whatever the chunking.
    #[test]
    fn valid_framed_streams_reassemble_exactly(
        seed in any::<u64>(),
        n in 1usize..=5,
        chunk in 1usize..64,
    ) {
        let payloads = valid_encodings(seed, n);
        let mut stream = Vec::new();
        for (i, payload) in payloads.iter().enumerate() {
            stream.extend_from_slice(&frame_with_prefix(QueryId(i as u64), payload));
        }
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            fb.push(piece);
            while let Some(env) = fb.next_frame().expect("well-formed stream") {
                got.push((env.query, env.payload.to_vec()));
            }
        }
        fb.finish().expect("no partial frame at a clean EOF");
        prop_assert_eq!(got.len(), payloads.len());
        for (i, (payload, (query, reassembled))) in payloads.iter().zip(&got).enumerate() {
            prop_assert_eq!(*query, QueryId(i as u64));
            prop_assert_eq!(payload, reassembled);
        }
    }

    /// A truncated final frame is always a typed error at EOF, at any cut
    /// point and any read granularity — the worker-side guarantee that a
    /// master dying mid-write cannot be mistaken for a clean goodbye.
    #[test]
    fn truncated_framed_streams_fail_typed(
        seed in any::<u64>(),
        n in 1usize..=5,
        cut_frac in 0.0..1.0f64,
        chunk in 1usize..64,
    ) {
        let payload = &valid_encodings(seed, n)[0];
        let stream = frame_with_prefix(QueryId(7), payload);
        let cut = 1 + ((stream.len() - 2) as f64 * cut_frac) as usize; // 1..len-1: strictly partial
        let mut fb = FrameBuffer::new();
        for piece in stream[..cut].chunks(chunk) {
            fb.push(piece);
            prop_assert!(fb.next_frame().expect("prefix of a valid frame").is_none());
        }
        prop_assert!(fb.finish().is_err(), "cut at {} of {} must be typed", cut, stream.len());
    }
}
