//! Wire-format regression tests for the SMA protocol messages.
//!
//! Golden byte vectors in the same style as the `mpq_cluster` codec suite:
//! exact frozen encodings of hand-constructed values covering every variant
//! of both tagged enums plus the memo-slot payload. Any change to the wire
//! format — field order, widths, tags — fails these tests and forces a
//! deliberate format-version decision instead of a silent break.
//!
//! To regenerate the golden constants after an *intentional* format change:
//! `cargo test -p mpq_sma --test codec_golden -- --ignored --nocapture`
//! and paste the printed constants below.

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mpq_cluster::Wire;
use mpq_cost::{CostVector, Objective, ScanOp};
use mpq_dp::WorkerStats;
use mpq_model::{Catalog, JoinGraph, Predicate, Query, TableSet, TableStats};
use mpq_partition::PlanSpace;
use mpq_plan::{Plan, PlanEntry};
use mpq_sma::{SlotUpdate, SmaMasterMsg, SmaReply};

// ---------------------------------------------------------------------------
// Fixed values under golden protection (same shapes as the cluster suite).
// ---------------------------------------------------------------------------

fn golden_query() -> Query {
    Query {
        catalog: Catalog::from_stats(vec![
            TableStats {
                cardinality: 1000.0,
                tuple_bytes: 64.0,
                join_domain: 100.0,
            },
            TableStats {
                cardinality: 50000.0,
                tuple_bytes: 128.0,
                join_domain: 2500.0,
            },
            TableStats {
                cardinality: 8.0,
                tuple_bytes: 16.0,
                join_domain: 2.0,
            },
        ]),
        predicates: vec![
            Predicate {
                left: 0,
                right: 1,
                selectivity: 0.01,
            },
            Predicate {
                left: 1,
                right: 2,
                selectivity: 0.5,
            },
        ],
        graph: JoinGraph::Chain,
    }
}

fn golden_slot() -> SlotUpdate {
    SlotUpdate {
        set: TableSet::from_tables([0, 1]),
        entries: vec![PlanEntry::scan(0, ScanOp::Full, CostVector::new(1.0, 2.0))],
    }
}

fn golden_stats() -> WorkerStats {
    WorkerStats {
        stored_sets: 11,
        total_entries: 22,
        splits_tried: 33,
        plans_generated: 44,
        optimize_micros: 55,
        threads_used: 66,
    }
}

fn golden_final_plan() -> Plan {
    Plan::Scan {
        table: 2,
        op: ScanOp::Full,
        cost: CostVector::new(8.0, 16.0),
        cardinality: 8.0,
    }
}

// ---------------------------------------------------------------------------
// Frozen encodings. Regenerate only on a deliberate wire-format change.
// ---------------------------------------------------------------------------

const GOLDEN_SLOT_UPDATE: &str = "030000000000000001000000000000000000f03f000000000000004000000000";
const GOLDEN_MASTER_INIT: &str =
    "00030000000000000000408f40000000000000504000000000000059400000000\
    0006ae8400000000000006040000000000088a340000000000000204000000000000030400000000000000040020000\
    0000017b14ae47e17a843f0102000000000000e03f000000";
const GOLDEN_MASTER_ASSIGN: &str = "010200000003000000000000000c00000000000000";
const GOLDEN_MASTER_DELTA: &str =
    "0201000000030000000000000001000000000000000000f03f000000000000004000000000";
const GOLDEN_MASTER_FINISH: &str = "03";
const GOLDEN_MASTER_ABORT: &str = "04";
const GOLDEN_REPLY_LEVEL_DONE: &str = "000100000003000000000000000100000000000000000\
    0f03f0000000000000040000000002a00000000000000";
const GOLDEN_REPLY_FINAL: &str = "0101000000000200000000000000204000000000000030400000000000002040\
    0b00000000000000160000000000000021000000000000002c000000000000003700000000000000420000000000\
    0000";
const GOLDEN_REPLY_MALFORMED: &str = "02";

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn assert_golden<T: Wire + PartialEq + std::fmt::Debug>(value: &T, expected_hex: &str, what: &str) {
    let encoded = value.to_bytes();
    assert_eq!(
        hex(&encoded),
        expected_hex,
        "wire format of {what} changed — if intentional, regenerate the golden constants \
         (see module docs); if not, you just broke cross-version compatibility"
    );
    let decoded = T::from_bytes(&encoded).expect("golden bytes decode");
    assert_eq!(&decoded, value, "golden {what} did not round-trip");
}

#[test]
fn golden_slot_update_bytes() {
    assert_golden(&golden_slot(), GOLDEN_SLOT_UPDATE, "SlotUpdate");
}

#[test]
fn golden_master_msg_bytes() {
    assert_golden(
        &SmaMasterMsg::Init {
            query: golden_query(),
            space: PlanSpace::Linear,
            objective: Objective::Single,
        },
        GOLDEN_MASTER_INIT,
        "SmaMasterMsg::Init",
    );
    assert_golden(
        &SmaMasterMsg::Assign {
            sets: vec![TableSet::from_tables([0, 1]), TableSet::from_tables([2, 3])],
        },
        GOLDEN_MASTER_ASSIGN,
        "SmaMasterMsg::Assign",
    );
    assert_golden(
        &SmaMasterMsg::Delta {
            slots: vec![golden_slot()],
        },
        GOLDEN_MASTER_DELTA,
        "SmaMasterMsg::Delta",
    );
    assert_golden(
        &SmaMasterMsg::Finish,
        GOLDEN_MASTER_FINISH,
        "SmaMasterMsg::Finish",
    );
    assert_golden(
        &SmaMasterMsg::Abort,
        GOLDEN_MASTER_ABORT,
        "SmaMasterMsg::Abort",
    );
}

#[test]
fn golden_reply_bytes() {
    assert_golden(
        &SmaReply::LevelDone {
            slots: vec![golden_slot()],
            micros: 42,
        },
        GOLDEN_REPLY_LEVEL_DONE,
        "SmaReply::LevelDone",
    );
    assert_golden(
        &SmaReply::Final {
            plans: vec![golden_final_plan()],
            stats: golden_stats(),
        },
        GOLDEN_REPLY_FINAL,
        "SmaReply::Final",
    );
    assert_golden(
        &SmaReply::Malformed,
        GOLDEN_REPLY_MALFORMED,
        "SmaReply::Malformed",
    );
}

/// Pin the tag layout: every variant's first byte is its wire tag, and the
/// payload-free variants are exactly one byte.
#[test]
fn golden_tag_layout() {
    assert_eq!(
        SmaMasterMsg::Assign { sets: vec![] }.to_bytes()[0],
        1,
        "Assign tag"
    );
    assert_eq!(
        SmaMasterMsg::Delta { slots: vec![] }.to_bytes()[0],
        2,
        "Delta tag"
    );
    assert_eq!(&SmaMasterMsg::Finish.to_bytes()[..], [3]);
    assert_eq!(&SmaMasterMsg::Abort.to_bytes()[..], [4]);
    assert_eq!(
        SmaReply::LevelDone {
            slots: vec![],
            micros: 0
        }
        .to_bytes()[0],
        0,
        "LevelDone tag"
    );
    assert_eq!(&SmaReply::Malformed.to_bytes()[..], [2]);
}

/// Prints the golden constants for pasting after an intentional change.
#[test]
#[ignore = "regeneration helper, not a check"]
fn regenerate_golden_constants() {
    let pairs: Vec<(&str, String)> = vec![
        ("GOLDEN_SLOT_UPDATE", hex(&golden_slot().to_bytes())),
        (
            "GOLDEN_MASTER_INIT",
            hex(&SmaMasterMsg::Init {
                query: golden_query(),
                space: PlanSpace::Linear,
                objective: Objective::Single,
            }
            .to_bytes()),
        ),
        (
            "GOLDEN_MASTER_ASSIGN",
            hex(&SmaMasterMsg::Assign {
                sets: vec![TableSet::from_tables([0, 1]), TableSet::from_tables([2, 3])],
            }
            .to_bytes()),
        ),
        (
            "GOLDEN_MASTER_DELTA",
            hex(&SmaMasterMsg::Delta {
                slots: vec![golden_slot()],
            }
            .to_bytes()),
        ),
        (
            "GOLDEN_MASTER_FINISH",
            hex(&SmaMasterMsg::Finish.to_bytes()),
        ),
        ("GOLDEN_MASTER_ABORT", hex(&SmaMasterMsg::Abort.to_bytes())),
        (
            "GOLDEN_REPLY_LEVEL_DONE",
            hex(&SmaReply::LevelDone {
                slots: vec![golden_slot()],
                micros: 42,
            }
            .to_bytes()),
        ),
        (
            "GOLDEN_REPLY_FINAL",
            hex(&SmaReply::Final {
                plans: vec![golden_final_plan()],
                stats: golden_stats(),
            }
            .to_bytes()),
        ),
        (
            "GOLDEN_REPLY_MALFORMED",
            hex(&SmaReply::Malformed.to_bytes()),
        ),
    ];
    for (name, value) in pairs {
        println!("const {name}: &str = \"{value}\";");
    }
}
