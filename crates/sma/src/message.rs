//! SMA wire messages.
//!
//! Unlike MPQ's single task/reply pair, SMA needs four master-side message
//! kinds (initialization, per-level assignment, memo broadcast, final plan
//! request) and two worker-side kinds (level results, final plans). The
//! memo-delta messages are the exponential-traffic culprit.

use mpq_cluster::{DecodeError, Decoder, Encoder, Wire};
use mpq_cost::Objective;
use mpq_dp::WorkerStats;
use mpq_model::{Query, TableSet};
use mpq_partition::PlanSpace;
use mpq_plan::{Plan, PlanEntry};

/// One memo slot crossing the network: the table set and its surviving
/// plan entries, in canonical (producer) order.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotUpdate {
    /// The join result this slot belongs to.
    pub set: TableSet,
    /// Surviving entries for the set.
    pub entries: Vec<PlanEntry>,
}

impl Wire for SlotUpdate {
    fn encode(&self, enc: &mut Encoder) {
        self.set.encode(enc);
        self.entries.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SlotUpdate {
            set: TableSet::decode(dec)?,
            entries: Vec::<PlanEntry>::decode(dec)?,
        })
    }
}

/// Master → worker messages.
#[derive(Clone, Debug, PartialEq)]
pub enum SmaMasterMsg {
    /// Start a query: workers build their memo replica and seed scans.
    Init {
        /// The query with statistics.
        query: Query,
        /// Plan space to search.
        space: PlanSpace,
        /// Objective / pruning function.
        objective: Objective,
    },
    /// Compute plan entries for these (same-cardinality) join results.
    Assign {
        /// The table sets assigned to this worker for the current level.
        sets: Vec<TableSet>,
    },
    /// Merge these slots into the replica (level broadcast).
    Delta {
        /// Slots produced by all workers during the current level.
        slots: Vec<SlotUpdate>,
    },
    /// Reconstruct and return the final plan(s) for the full table set.
    Finish,
    /// The session is over without a `Finish` (it failed at the master):
    /// drop its replica. No reply.
    Abort,
}

impl Wire for SmaMasterMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SmaMasterMsg::Init {
                query,
                space,
                objective,
            } => {
                enc.put_u8(0);
                query.encode(enc);
                space.encode(enc);
                objective.encode(enc);
            }
            SmaMasterMsg::Assign { sets } => {
                enc.put_u8(1);
                sets.encode(enc);
            }
            SmaMasterMsg::Delta { slots } => {
                enc.put_u8(2);
                slots.encode(enc);
            }
            SmaMasterMsg::Finish => enc.put_u8(3),
            SmaMasterMsg::Abort => enc.put_u8(4),
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(SmaMasterMsg::Init {
                query: Query::decode(dec)?,
                space: PlanSpace::decode(dec)?,
                objective: Objective::decode(dec)?,
            }),
            1 => Ok(SmaMasterMsg::Assign {
                sets: Vec::<TableSet>::decode(dec)?,
            }),
            2 => Ok(SmaMasterMsg::Delta {
                slots: Vec::<SlotUpdate>::decode(dec)?,
            }),
            3 => Ok(SmaMasterMsg::Finish),
            4 => Ok(SmaMasterMsg::Abort),
            tag => Err(DecodeError::BadTag {
                tag,
                ty: "SmaMasterMsg",
            }),
        }
    }
}

/// Worker → master messages.
#[derive(Clone, Debug, PartialEq)]
pub enum SmaReply {
    /// Results of one `Assign`: the computed slots plus the compute time.
    LevelDone {
        /// Slots computed by this worker.
        slots: Vec<SlotUpdate>,
        /// Pure compute time for the batch, microseconds.
        micros: u64,
    },
    /// Response to `Finish`.
    Final {
        /// Complete plan(s) for the query.
        plans: Vec<Plan>,
        /// Memory/work counters of this worker's replica.
        stats: WorkerStats,
    },
    /// The worker could not decode the master's message (protocol bug or
    /// corruption): the master fails the session typed instead of
    /// merging a hole into every replica.
    Malformed,
}

impl Wire for SmaReply {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SmaReply::LevelDone { slots, micros } => {
                enc.put_u8(0);
                slots.encode(enc);
                enc.put_u64(*micros);
            }
            SmaReply::Final { plans, stats } => {
                enc.put_u8(1);
                plans.encode(enc);
                stats.encode(enc);
            }
            SmaReply::Malformed => enc.put_u8(2),
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(SmaReply::LevelDone {
                slots: Vec::<SlotUpdate>::decode(dec)?,
                micros: dec.get_u64()?,
            }),
            1 => Ok(SmaReply::Final {
                plans: Vec::<Plan>::decode(dec)?,
                stats: WorkerStats::decode(dec)?,
            }),
            2 => Ok(SmaReply::Malformed),
            tag => Err(DecodeError::BadTag {
                tag,
                ty: "SmaReply",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use mpq_cost::{CostVector, ScanOp};
    use mpq_model::{WorkloadConfig, WorkloadGenerator};

    #[test]
    fn master_messages_roundtrip() {
        let query = WorkloadGenerator::new(WorkloadConfig::paper_default(6), 1).next_query();
        let msgs = vec![
            SmaMasterMsg::Init {
                query,
                space: PlanSpace::Linear,
                objective: Objective::Single,
            },
            SmaMasterMsg::Assign {
                sets: vec![TableSet::from_tables([0, 1]), TableSet::from_tables([2, 3])],
            },
            SmaMasterMsg::Delta {
                slots: vec![SlotUpdate {
                    set: TableSet::from_tables([0, 1]),
                    entries: vec![PlanEntry::scan(0, ScanOp::Full, CostVector::new(1.0, 2.0))],
                }],
            },
            SmaMasterMsg::Finish,
            SmaMasterMsg::Abort,
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            assert_eq!(SmaMasterMsg::from_bytes(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn replies_roundtrip() {
        let r = SmaReply::LevelDone {
            slots: vec![SlotUpdate {
                set: TableSet::singleton(3),
                entries: vec![],
            }],
            micros: 42,
        };
        assert_eq!(SmaReply::from_bytes(&r.to_bytes()).unwrap(), r);
        let query = WorkloadGenerator::new(WorkloadConfig::paper_default(4), 2).next_query();
        let out = mpq_dp::optimize_serial(&query, PlanSpace::Linear, Objective::Single);
        let r = SmaReply::Final {
            plans: out.plans,
            stats: out.stats,
        };
        assert_eq!(SmaReply::from_bytes(&r.to_bytes()).unwrap(), r);
        let r = SmaReply::Malformed;
        assert_eq!(SmaReply::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(SmaMasterMsg::from_bytes(&[9]).is_err());
        assert!(SmaReply::from_bytes(&[7]).is_err());
    }
}
