//! **SMA** — the fine-grained baseline the paper compares against
//! (Section 6.1): a representative of prior parallel query optimizers
//! designed for shared-memory architectures (Han et al., VLDB 2008; Han &
//! Lee, SIGMOD 2009), transplanted onto a shared-nothing cluster.
//!
//! The master drives the classical DP level by level. For each join-result
//! cardinality `k` it partitions the `C(n, k)` table sets among the
//! workers (fine-grained task assignment), each worker computes optimal
//! plans for its sets against its **replicated memo**, sends the new
//! entries back, and the master re-broadcasts the merged level to every
//! worker so all replicas stay consistent. This faithfully reproduces the
//! two properties the paper attributes to SMA on shared-nothing hardware:
//!
//! * **many communication rounds** — one per join-result cardinality,
//!   `n - 1` per query, plus the final plan request; and
//! * **exponential network traffic** — the memo (size `O(2^n)`) crosses
//!   the network once per worker, `O(m · 2^n)` bytes in total, versus
//!   MPQ's `O(m · (b_q + b_p))`.
//!
//! Entry indices stay consistent across replicas because a set's slot is
//! computed by exactly one worker and then *replaced wholesale* on every
//! replica by the broadcast; parents computed in later rounds reference
//! the broadcast ordering.

#![forbid(unsafe_code)]

//! **Fault tolerance contrast.** SMA detects worker loss and fails fast
//! with a typed [`SmaError`]: recovering a replica would mean re-sending
//! `Init` plus every `Delta` broadcast so far (the memo), a bill measured
//! in [`SmaMetrics::replica_recovery_bytes`] — versus MPQ's `O(b_q)` task
//! re-issue.

pub mod message;
pub mod optimizer;
pub mod service;

pub use message::{SlotUpdate, SmaMasterMsg, SmaReply};
pub use optimizer::{SmaConfig, SmaError, SmaMetrics, SmaOptimizer, SmaOutcome};
pub use service::{serve_socket_worker, worker_logic, QueryHandle, SmaService};
