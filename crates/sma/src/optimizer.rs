//! The SMA master protocol and worker logic.
//!
//! SMA is the fault-tolerance *counter-example* the paper's deployment
//! argument leans on. Where an MPQ task is stateless (re-issue one range,
//! `O(b_q)` bytes), an SMA worker holds a **replicated memo** built up
//! over `n - 1` coordination rounds: replacing a lost worker means
//! re-sending the `Init` message plus every `Delta` broadcast so far —
//! bytes that grow exponentially in the query size. This module therefore
//! does not attempt recovery at all; it detects worker loss and **fails
//! fast** with a typed [`SmaError`] carrying the measured
//! `memo_rebroadcast_bytes` a recovery would have cost.

use crate::message::{SlotUpdate, SmaMasterMsg, SmaReply};
use bytes::Bytes;
use mpq_cluster::{
    Cluster, ClusterError, Control, DecodeError, FaultPlan, LatencyModel, NetworkSnapshot, Wire,
    WorkerCtx, WorkerLogic,
};
use mpq_cost::{CardinalityEstimator, Objective, ScanOp};
use mpq_dp::{compute_entries_for_set, reconstruct_plan, HashMemo, MemoStore, WorkerStats};
use mpq_model::{Query, TableSet};
use mpq_partition::PlanSpace;
use mpq_plan::{Plan, PlanEntry, PruningPolicy};
use std::fmt;
use std::time::{Duration, Instant};

/// Configuration of the SMA baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmaConfig {
    /// Latency/overhead model of the simulated network.
    pub latency: LatencyModel,
    /// Deterministic fault injection (default: no faults).
    pub faults: FaultPlan,
    /// How long the master waits for a reply before probing for dead
    /// workers. `None` blocks indefinitely — fine fault-free, but set a
    /// timeout whenever faults are possible.
    pub recv_timeout: Option<Duration>,
}

/// Typed failure of one SMA optimization run.
///
/// Every variant carries `memo_rebroadcast_bytes`: the bytes (`Init` plus
/// all `Delta` broadcasts so far) that restoring one replica would cost at
/// the point of failure — the executable form of the paper's claim that
/// SMA recovery requires re-shipping the replicated memo, unlike MPQ's
/// `O(b_q)` task re-issue.
#[derive(Clone, Debug, PartialEq)]
pub enum SmaError {
    /// A worker died mid-protocol; its replica (and its assigned slots)
    /// are unrecoverable without a full memo re-broadcast.
    WorkerLost {
        /// The dead worker.
        worker: usize,
        /// Coordination round (1-based; round 1 is `Init`) during which
        /// the loss was detected.
        round: u64,
        /// Measured bytes to rebuild one replica at this point.
        memo_rebroadcast_bytes: u64,
    },
    /// No reply arrived and no worker is provably dead (e.g. a dropped
    /// reply): the level-synchronized protocol cannot make progress.
    Stalled {
        /// Coordination round of the stall.
        round: u64,
        /// Measured bytes to rebuild one replica at this point.
        memo_rebroadcast_bytes: u64,
    },
    /// A worker reply failed to decode (protocol bug or corruption).
    Decode {
        /// The replying worker.
        worker: usize,
        /// The codec failure.
        source: DecodeError,
    },
}

impl SmaError {
    /// The measured replica-recovery cost at the failure point, if the
    /// variant carries one.
    pub fn memo_rebroadcast_bytes(&self) -> Option<u64> {
        match self {
            SmaError::WorkerLost {
                memo_rebroadcast_bytes,
                ..
            }
            | SmaError::Stalled {
                memo_rebroadcast_bytes,
                ..
            } => Some(*memo_rebroadcast_bytes),
            SmaError::Decode { .. } => None,
        }
    }
}

impl fmt::Display for SmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmaError::WorkerLost {
                worker,
                round,
                memo_rebroadcast_bytes,
            } => write!(
                f,
                "worker {worker} lost in round {round}; replica recovery would re-broadcast \
                 {memo_rebroadcast_bytes} bytes"
            ),
            SmaError::Stalled {
                round,
                memo_rebroadcast_bytes,
            } => write!(
                f,
                "protocol stalled in round {round} (lost reply); replica recovery would \
                 re-broadcast {memo_rebroadcast_bytes} bytes"
            ),
            SmaError::Decode { worker, source } => {
                write!(f, "reply from worker {worker} failed to decode: {source}")
            }
        }
    }
}

impl std::error::Error for SmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmaError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Measurements of one SMA run.
#[derive(Clone, Debug, Default)]
pub struct SmaMetrics {
    /// End-to-end optimization time at the master, microseconds.
    pub total_micros: u64,
    /// Maximum cumulative pure compute time over workers, microseconds.
    pub max_worker_micros: u64,
    /// Network counters — note the contrast with MPQ: these grow with the
    /// memo size, i.e. exponentially in the query size.
    pub network: NetworkSnapshot,
    /// Per-worker cumulative compute time, microseconds.
    pub worker_compute_micros: Vec<u64>,
    /// Memory counters of the (fully replicated) memo on worker 0.
    pub replica_stats: WorkerStats,
    /// Number of coordination rounds (one per join-result cardinality).
    pub rounds: u64,
    /// Bytes that rebuilding one replica would have cost at the end of the
    /// run (`Init` + all `Delta` broadcasts): SMA's per-worker recovery
    /// bill, the bench-friendly counterpart of MPQ's
    /// `retry_task_bytes`-per-retry.
    pub replica_recovery_bytes: u64,
}

/// Result of one SMA optimization.
#[derive(Clone, Debug)]
pub struct SmaOutcome {
    /// The optimal plan (single-objective) or Pareto frontier.
    pub plans: Vec<Plan>,
    /// Run measurements.
    pub metrics: SmaMetrics,
}

/// Worker state after `Init`.
struct ReplicaState {
    query: Query,
    space: PlanSpace,
    objective: Objective,
    memo: HashMemo,
}

/// SMA worker logic: maintain a replicated memo, compute assigned slots,
/// apply broadcast deltas.
#[derive(Default)]
struct SmaWorker {
    state: Option<ReplicaState>,
}

impl WorkerLogic for SmaWorker {
    fn on_message(&mut self, payload: Bytes, ctx: &mut WorkerCtx) -> Control {
        let msg = match SmaMasterMsg::from_bytes(&payload) {
            Ok(m) => m,
            Err(_) => {
                // Protocol bug: reply empty so the master cannot deadlock.
                ctx.send_to_master(
                    SmaReply::LevelDone {
                        slots: Vec::new(),
                        micros: 0,
                    }
                    .to_bytes(),
                );
                return Control::Shutdown;
            }
        };
        match msg {
            SmaMasterMsg::Init {
                query,
                space,
                objective,
            } => {
                let n = query.num_tables();
                let mut memo = HashMemo::new(n);
                let policy = PruningPolicy::new(objective, n);
                let mut est = CardinalityEstimator::new(&query);
                for t in 0..n {
                    let cost = ScanOp::Full.cost(&mut est, t);
                    policy.try_insert(
                        memo.single_slot_mut(t),
                        PlanEntry::scan(t as u8, ScanOp::Full, cost),
                    );
                }
                drop(est);
                self.state = Some(ReplicaState {
                    query,
                    space,
                    objective,
                    memo,
                });
                Control::Continue
            }
            SmaMasterMsg::Assign { sets } => {
                let state = self.state.as_mut().expect("Init precedes Assign");
                let t0 = Instant::now();
                let policy = PruningPolicy::new(state.objective, state.query.num_tables());
                let mut est = CardinalityEstimator::new(&state.query);
                let mut stats = WorkerStats::default();
                let slots: Vec<SlotUpdate> = sets
                    .iter()
                    .map(|&set| SlotUpdate {
                        set,
                        entries: compute_entries_for_set(
                            state.space,
                            set,
                            &state.memo,
                            &mut est,
                            &policy,
                            &mut stats,
                        ),
                    })
                    .collect();
                let micros = t0.elapsed().as_micros() as u64;
                ctx.send_to_master(SmaReply::LevelDone { slots, micros }.to_bytes());
                Control::Continue
            }
            SmaMasterMsg::Delta { slots } => {
                let state = self.state.as_mut().expect("Init precedes Delta");
                for s in slots {
                    state.memo.replace_slot(s.set, s.entries);
                }
                Control::Continue
            }
            SmaMasterMsg::Finish => {
                let state = self.state.as_ref().expect("Init precedes Finish");
                let n = state.query.num_tables();
                let policy = PruningPolicy::new(state.objective, n);
                let mut est = CardinalityEstimator::new(&state.query);
                let full = TableSet::full(n);
                let entries: Vec<PlanEntry> = state.memo.entries(full).to_vec();
                let mut plans: Vec<Plan> = entries
                    .iter()
                    .map(|e| reconstruct_plan(&state.memo, &mut est, full, e))
                    .collect();
                if n == 1 {
                    plans = state
                        .memo
                        .single_entries(0)
                        .iter()
                        .map(|e| reconstruct_plan(&state.memo, &mut est, TableSet::singleton(0), e))
                        .collect();
                }
                policy.final_prune(&mut plans);
                let stats = WorkerStats {
                    stored_sets: state.memo.stored_sets(),
                    total_entries: state.memo.total_entries(),
                    ..WorkerStats::default()
                };
                ctx.send_to_master(SmaReply::Final { plans, stats }.to_bytes());
                Control::Continue
            }
        }
    }
}

/// The SMA optimizer: level-synchronized parallel DP with a replicated
/// memo, coordinated by the master.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmaOptimizer {
    config: SmaConfig,
}

impl SmaOptimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: SmaConfig) -> Self {
        SmaOptimizer { config }
    }

    /// Optimizes `query` over `workers` worker nodes.
    ///
    /// # Panics
    /// Panics if the run fails (possible only with fault injection or a
    /// protocol bug); use [`SmaOptimizer::try_optimize`] for a typed
    /// error.
    pub fn optimize(
        &self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
        workers: usize,
    ) -> SmaOutcome {
        self.try_optimize(query, space, objective, workers)
            .expect("SMA optimization failed")
    }

    /// Fallible form of [`SmaOptimizer::optimize`]. SMA deliberately does
    /// **not** recover from worker loss: a lost replica would require
    /// re-broadcasting `Init` plus every `Delta` so far (the memo), so the
    /// protocol fails fast with that measured cost in the error.
    pub fn try_optimize(
        &self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
        workers: usize,
    ) -> Result<SmaOutcome, SmaError> {
        assert!(workers >= 1, "at least one worker required");
        let n = query.num_tables();
        let cluster =
            Cluster::spawn_with_faults(workers, self.config.latency, &self.config.faults, |_| {
                SmaWorker::default()
            });
        let start = Instant::now();
        // Running bill of one replica's state: what a replacement worker
        // would need to be sent to rejoin the protocol.
        let mut recovery_bytes: u64 = 0;
        let mut round: u64 = 0;

        // Maps a cluster-level failure to the fail-fast SMA error.
        let lost = |e: ClusterError, round: u64, recovery_bytes: u64| match e {
            ClusterError::WorkerLost { worker } => SmaError::WorkerLost {
                worker,
                round,
                memo_rebroadcast_bytes: recovery_bytes,
            },
            ClusterError::AllWorkersLost => SmaError::WorkerLost {
                worker: 0,
                round,
                memo_rebroadcast_bytes: recovery_bytes,
            },
            ClusterError::Timeout { .. } => SmaError::Stalled {
                round,
                memo_rebroadcast_bytes: recovery_bytes,
            },
        };

        // Receive with dead-worker detection: a straggler is waited out,
        // a provably dead worker (or a persistent stall) fails the run.
        let recv = |cluster: &Cluster,
                    round: u64,
                    recovery_bytes: u64|
         -> Result<(usize, Bytes), SmaError> {
            match self.config.recv_timeout {
                None => cluster.recv().map_err(|e| lost(e, round, recovery_bytes)),
                Some(t) => {
                    const MAX_STRIKES: u32 = 64;
                    let mut strikes = 0;
                    loop {
                        match cluster.recv_timeout(t) {
                            Ok(reply) => return Ok(reply),
                            Err(ClusterError::Timeout { .. }) => {
                                cluster.metrics().record_timeout();
                                if let Some(&worker) = cluster.dead_workers().first() {
                                    return Err(SmaError::WorkerLost {
                                        worker,
                                        round,
                                        memo_rebroadcast_bytes: recovery_bytes,
                                    });
                                }
                                strikes += 1;
                                if strikes >= MAX_STRIKES {
                                    return Err(SmaError::Stalled {
                                        round,
                                        memo_rebroadcast_bytes: recovery_bytes,
                                    });
                                }
                            }
                            Err(e) => return Err(lost(e, round, recovery_bytes)),
                        }
                    }
                }
            }
        };

        // Initialization round: ship the query and statistics everywhere.
        round += 1;
        cluster.metrics().record_round();
        let init = SmaMasterMsg::Init {
            query: query.clone(),
            space,
            objective,
        }
        .to_bytes();
        recovery_bytes += init.len() as u64;
        cluster
            .broadcast(&init, true)
            .map_err(|e| lost(e, round, recovery_bytes))?;

        let mut compute = vec![0u64; workers];

        // One coordination round per join-result cardinality.
        for k in 2..=n {
            round += 1;
            cluster.metrics().record_round();
            let sets: Vec<TableSet> = TableSet::subsets_of_size(n, k).collect();
            let participants = workers.min(sets.len());
            // Contiguous chunks — fine-grained task lists, as in the
            // prior algorithms SMA represents.
            let chunk = sets.len().div_ceil(participants);
            let mut sent = 0usize;
            for (w, batch) in sets.chunks(chunk).enumerate() {
                let msg = SmaMasterMsg::Assign {
                    sets: batch.to_vec(),
                };
                cluster
                    .send(w, msg.to_bytes(), true)
                    .map_err(|e| lost(e, round, recovery_bytes))?;
                sent += 1;
            }
            // Collect level results and merge (sets are disjoint across
            // workers, so merging is concatenation).
            let mut level_slots: Vec<SlotUpdate> = Vec::new();
            for _ in 0..sent {
                let (w, payload) = recv(&cluster, round, recovery_bytes)?;
                match SmaReply::from_bytes(&payload)
                    .map_err(|source| SmaError::Decode { worker: w, source })?
                {
                    SmaReply::LevelDone { slots, micros } => {
                        compute[w] += micros;
                        level_slots.extend(slots);
                    }
                    SmaReply::Final { .. } => unreachable!("Final only follows Finish"),
                }
            }
            // Broadcast the merged level so every replica stays consistent
            // — this is the exponential-traffic step, and the reason a
            // replacement replica costs the full running bill below.
            let delta = SmaMasterMsg::Delta { slots: level_slots }.to_bytes();
            recovery_bytes += delta.len() as u64;
            cluster
                .broadcast(&delta, false)
                .map_err(|e| lost(e, round, recovery_bytes))?;
        }

        // Final round: any replica can produce the plan; ask worker 0.
        round += 1;
        cluster.metrics().record_round();
        cluster
            .send(0, SmaMasterMsg::Finish.to_bytes(), false)
            .map_err(|e| lost(e, round, recovery_bytes))?;
        let (w, payload) = recv(&cluster, round, recovery_bytes)?;
        let (plans, replica_stats) = match SmaReply::from_bytes(&payload)
            .map_err(|source| SmaError::Decode { worker: w, source })?
        {
            SmaReply::Final { plans, stats } => (plans, stats),
            SmaReply::LevelDone { .. } => unreachable!("Finish yields Final"),
        };

        let total_micros = start.elapsed().as_micros() as u64;
        let network = cluster.metrics().snapshot();
        let rounds = network.rounds;
        cluster.shutdown();

        Ok(SmaOutcome {
            plans,
            metrics: SmaMetrics {
                total_micros,
                max_worker_micros: compute.iter().copied().max().unwrap_or(0),
                network,
                worker_compute_micros: compute,
                replica_stats,
                rounds,
                replica_recovery_bytes: recovery_bytes,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_dp::optimize_serial;
    use mpq_model::{WorkloadConfig, WorkloadGenerator};

    fn query(n: usize, seed: u64) -> Query {
        WorkloadGenerator::new(WorkloadConfig::paper_default(n), seed).next_query()
    }

    #[test]
    fn sma_matches_serial_linear() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        for seed in 0..3 {
            let q = query(7, seed);
            let serial = optimize_serial(&q, PlanSpace::Linear, Objective::Single);
            for workers in [1usize, 2, 4] {
                let out = opt.optimize(&q, PlanSpace::Linear, Objective::Single, workers);
                assert_eq!(out.plans.len(), 1);
                let a = out.plans[0].cost().time;
                let b = serial.plans[0].cost().time;
                assert!(
                    (a - b).abs() <= 1e-9 * b.max(1.0),
                    "seed {seed} workers {workers}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn sma_matches_serial_bushy() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(6, 11);
        let serial = optimize_serial(&q, PlanSpace::Bushy, Objective::Single);
        let out = opt.optimize(&q, PlanSpace::Bushy, Objective::Single, 3);
        let a = out.plans[0].cost().time;
        let b = serial.plans[0].cost().time;
        assert!((a - b).abs() <= 1e-9 * b.max(1.0));
    }

    #[test]
    fn sma_multi_objective_matches_serial_frontier() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(6, 12);
        let serial = optimize_serial(&q, PlanSpace::Linear, Objective::Multi { alpha: 1.0 });
        let out = opt.optimize(&q, PlanSpace::Linear, Objective::Multi { alpha: 1.0 }, 4);
        assert_eq!(out.plans.len(), serial.plans.len());
        for sp in &serial.plans {
            assert!(out
                .plans
                .iter()
                .any(|pp| (pp.cost().time - sp.cost().time).abs() <= 1e-9 * sp.cost().time));
        }
    }

    #[test]
    fn sma_has_one_round_per_level() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(6, 13);
        let out = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 4);
        // init + (n-1) levels + finish = n + 1 rounds.
        assert_eq!(out.metrics.rounds, 7);
    }

    #[test]
    fn sma_network_grows_with_workers() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(8, 14);
        let b1 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 1);
        let b4 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 4);
        assert!(
            b4.metrics.network.total_bytes() > b1.metrics.network.total_bytes(),
            "broadcasts to more replicas must cost more bytes"
        );
    }

    #[test]
    fn sma_replica_memory_does_not_shrink_with_workers() {
        // The replicated memo is the scalability problem: every worker
        // stores the full table-set space regardless of parallelism.
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(8, 15);
        let m1 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 1);
        let m4 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 4);
        assert_eq!(
            m1.metrics.replica_stats.stored_sets,
            m4.metrics.replica_stats.stored_sets
        );
    }

    #[test]
    fn sma_single_table_query() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(1, 16);
        let out = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 2);
        assert_eq!(out.plans.len(), 1);
        assert_eq!(out.plans[0].num_joins(), 0);
    }

    #[test]
    fn sma_fault_free_try_optimize_succeeds() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(6, 17);
        let out = opt
            .try_optimize(&q, PlanSpace::Linear, Objective::Single, 3)
            .expect("fault-free run succeeds");
        // The recovery bill covers Init plus every Delta: it must exceed
        // what MPQ would pay to re-issue a task (the query bytes).
        assert!(out.metrics.replica_recovery_bytes > q.to_bytes().len() as u64);
    }

    #[test]
    fn sma_worker_loss_fails_fast_with_recovery_bill() {
        use mpq_cluster::FaultAction;
        // A plan that provably crashes some worker within the first three
        // messages it receives — always reached: every SMA worker gets
        // Init plus one message per level.
        let faults = FaultPlan {
            crash_prob: 1.0,
            min_survivors: 2,
            ..FaultPlan::NONE
        }
        .with_seed_where(3, 64, |s| {
            (0..3).any(|w| (0..3).any(|m| s.action(w, m) == FaultAction::CrashBeforeReply))
        })
        .expect("some seed crashes a worker early");
        let opt = SmaOptimizer::new(SmaConfig {
            faults,
            recv_timeout: Some(Duration::from_millis(20)),
            ..SmaConfig::default()
        });
        let q = query(7, 18);
        let err = opt
            .try_optimize(&q, PlanSpace::Linear, Objective::Single, 3)
            .expect_err("a lost replica must fail the run");
        match err {
            SmaError::WorkerLost {
                round,
                memo_rebroadcast_bytes,
                ..
            } => {
                assert!(round >= 1);
                // Recovery would re-ship at least the Init payload.
                assert!(memo_rebroadcast_bytes >= q.to_bytes().len() as u64);
            }
            other => panic!("expected WorkerLost, got {other}"),
        }
    }

    #[test]
    fn sma_recovery_bill_grows_with_query_size_unlike_mpq_tasks() {
        // The paper's contrast, as an executable assertion: SMA's replica
        // recovery bill grows like the memo (exponentially), MPQ's task
        // re-issue cost like the query (linearly).
        let opt = SmaOptimizer::new(SmaConfig::default());
        let bill = |n: usize| {
            let q = query(n, 19);
            let out = opt
                .try_optimize(&q, PlanSpace::Linear, Objective::Single, 2)
                .unwrap();
            (
                out.metrics.replica_recovery_bytes as f64,
                q.to_bytes().len() as f64,
            )
        };
        let (bill6, task6) = bill(6);
        let (bill9, task9) = bill(9);
        // Task (query) bytes grow ~linearly; the replica bill much faster.
        assert!(task9 / task6 < 2.5, "query bytes stay linear");
        assert!(
            bill9 / bill6 > 4.0,
            "replica recovery bill must grow super-linearly: {bill6} -> {bill9}"
        );
    }
}
