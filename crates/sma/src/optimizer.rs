//! The SMA configuration, error and metrics types, plus the single-query
//! [`SmaOptimizer`] facade over the resident
//! [`SmaService`] session machine.
//!
//! SMA is the fault-tolerance *counter-example* the paper's deployment
//! argument leans on. Where an MPQ task is stateless (re-issue one range,
//! `O(b_q)` bytes), an SMA worker holds a **replicated memo** built up
//! over `n - 1` coordination rounds: replacing a lost worker means
//! re-sending the `Init` message plus every `Delta` broadcast so far —
//! bytes that grow exponentially in the query size. This module therefore
//! does not attempt recovery at all; it detects worker loss and **fails
//! fast** with a typed [`SmaError`] carrying the measured
//! `memo_rebroadcast_bytes` a recovery would have cost.

use crate::service::SmaService;
use mpq_cluster::{ClusterError, DecodeError, FaultPlan, LatencyModel, NetworkSnapshot};
use mpq_cost::Objective;
use mpq_dp::WorkerStats;
use mpq_model::Query;
use mpq_partition::PlanSpace;
use mpq_plan::Plan;
use std::fmt;
use std::time::Duration;

/// Configuration of the SMA baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmaConfig {
    /// Latency/overhead model of the simulated network.
    pub latency: LatencyModel,
    /// Deterministic fault injection (default: no faults).
    pub faults: FaultPlan,
    /// How long the master waits for a reply before probing for dead
    /// workers. `None` blocks indefinitely — fine fault-free, but set a
    /// timeout whenever faults are possible.
    pub recv_timeout: Option<Duration>,
    /// Byte budget of each worker's **shard-local cross-query memo
    /// cache**: finished memo slots (`Vec<PlanEntry>` per table set),
    /// keyed by the canonical query signature plus the set, are served to
    /// later sessions with identical statistics and predicates instead of
    /// being recomputed against the replica. Deterministic replicas make
    /// this transparent: for a given signature, every replica's memo
    /// state at each level is identical across sessions. `0` (the
    /// default) disables caching.
    pub cache_bytes: usize,
    /// Admission limit: how many sessions may be in flight (submitted but
    /// not yet finished) at once. Submissions beyond the limit are
    /// refused with a typed [`SmaError::Overloaded`] — before any `Init`
    /// broadcast, so a refused query pins no replicas. `0` (the default)
    /// means unlimited — bit-for-bit the pre-admission behavior.
    pub max_in_flight: usize,
}

/// Typed failure of one SMA optimization run.
///
/// Every variant carries `memo_rebroadcast_bytes`: the bytes (`Init` plus
/// all `Delta` broadcasts so far) that restoring one replica would cost at
/// the point of failure — the executable form of the paper's claim that
/// SMA recovery requires re-shipping the replicated memo, unlike MPQ's
/// `O(b_q)` task re-issue.
#[derive(Clone, Debug, PartialEq)]
pub enum SmaError {
    /// A worker died mid-protocol; its replica (and its assigned slots)
    /// are unrecoverable without a full memo re-broadcast.
    WorkerLost {
        /// The dead worker.
        worker: usize,
        /// Coordination round (1-based; round 1 is `Init`) during which
        /// the loss was detected.
        round: u64,
        /// Measured bytes to rebuild one replica at this point.
        memo_rebroadcast_bytes: u64,
    },
    /// No reply arrived and no worker is provably dead (e.g. a dropped
    /// reply): the level-synchronized protocol cannot make progress.
    Stalled {
        /// Coordination round of the stall.
        round: u64,
        /// Measured bytes to rebuild one replica at this point.
        memo_rebroadcast_bytes: u64,
    },
    /// A worker reply failed to decode (protocol bug or corruption).
    Decode {
        /// The replying worker.
        worker: usize,
        /// The codec failure.
        source: DecodeError,
    },
    /// A worker's reply did not fit the session's protocol state (e.g. it
    /// reported the master's own message as malformed, or replied out of
    /// phase) — a protocol bug, surfaced typed rather than merged into
    /// the replicas.
    Protocol {
        /// The offending worker.
        worker: usize,
    },
    /// The cluster substrate failed outside the SMA protocol proper
    /// (e.g. the resident cluster could not be spawned).
    Cluster(ClusterError),
    /// The handle does not name a live or parked session of this service:
    /// its result was already taken (poll-then-wait), or it belongs to a
    /// different service. Caller misuse, surfaced typed.
    UnknownHandle {
        /// The session id the handle carried.
        id: mpq_cluster::QueryId,
    },
    /// A spawn or submission request was malformed (e.g. zero workers) —
    /// caller misuse, surfaced typed.
    BadRequest {
        /// What was wrong with the request.
        reason: &'static str,
    },
    /// The service's in-flight budget ([`SmaConfig::max_in_flight`]) is
    /// spent: `in_flight` sessions are already admitted against a limit
    /// of `limit`. Backpressure, not failure — retry after redeeming a
    /// handle, or park with `submit_wait`.
    Overloaded {
        /// Sessions in flight when the submission was refused.
        in_flight: usize,
        /// The configured admission limit.
        limit: usize,
    },
}

impl SmaError {
    /// The measured replica-recovery cost at the failure point, if the
    /// variant carries one.
    pub fn memo_rebroadcast_bytes(&self) -> Option<u64> {
        match self {
            SmaError::WorkerLost {
                memo_rebroadcast_bytes,
                ..
            }
            | SmaError::Stalled {
                memo_rebroadcast_bytes,
                ..
            } => Some(*memo_rebroadcast_bytes),
            SmaError::Decode { .. }
            | SmaError::Protocol { .. }
            | SmaError::Cluster(_)
            | SmaError::UnknownHandle { .. }
            | SmaError::BadRequest { .. }
            | SmaError::Overloaded { .. } => None,
        }
    }
}

impl fmt::Display for SmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmaError::WorkerLost {
                worker,
                round,
                memo_rebroadcast_bytes,
            } => write!(
                f,
                "worker {worker} lost in round {round}; replica recovery would re-broadcast \
                 {memo_rebroadcast_bytes} bytes"
            ),
            SmaError::Stalled {
                round,
                memo_rebroadcast_bytes,
            } => write!(
                f,
                "protocol stalled in round {round} (lost reply); replica recovery would \
                 re-broadcast {memo_rebroadcast_bytes} bytes"
            ),
            SmaError::Decode { worker, source } => {
                write!(f, "reply from worker {worker} failed to decode: {source}")
            }
            SmaError::Protocol { worker } => {
                write!(f, "worker {worker} broke the session protocol")
            }
            SmaError::Cluster(e) => write!(f, "cluster failure: {e}"),
            SmaError::UnknownHandle { id } => write!(
                f,
                "handle {id} does not name a live or parked session of this service \
                 (already redeemed, or from a different service)"
            ),
            SmaError::BadRequest { reason } => write!(f, "malformed request: {reason}"),
            SmaError::Overloaded { in_flight, limit } => write!(
                f,
                "service overloaded: {in_flight} session(s) in flight at the admission \
                 limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for SmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmaError::Decode { source, .. } => Some(source),
            SmaError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

/// Measurements of one SMA run.
#[derive(Clone, Debug, Default)]
pub struct SmaMetrics {
    /// End-to-end optimization time at the master, microseconds.
    pub total_micros: u64,
    /// Maximum cumulative pure compute time over workers, microseconds.
    pub max_worker_micros: u64,
    /// Network counters — note the contrast with MPQ: these grow with the
    /// memo size, i.e. exponentially in the query size.
    pub network: NetworkSnapshot,
    /// Per-worker cumulative compute time, microseconds.
    pub worker_compute_micros: Vec<u64>,
    /// Memory counters of the (fully replicated) memo on worker 0.
    pub replica_stats: WorkerStats,
    /// Number of coordination rounds (one per join-result cardinality).
    pub rounds: u64,
    /// Bytes that rebuilding one replica would have cost at the end of the
    /// run (`Init` + all `Delta` broadcasts): SMA's per-worker recovery
    /// bill, the bench-friendly counterpart of MPQ's
    /// `retry_task_bytes`-per-retry.
    pub replica_recovery_bytes: u64,
}

/// Result of one SMA optimization.
#[must_use = "the outcome carries the plans and the per-worker counters"]
#[derive(Clone, Debug)]
pub struct SmaOutcome {
    /// The optimal plan (single-objective) or Pareto frontier.
    pub plans: Vec<Plan>,
    /// Run measurements.
    pub metrics: SmaMetrics,
}

/// The single-query SMA optimizer: level-synchronized parallel DP with a
/// replicated memo, expressed as submit-one-query-and-wait over a fresh
/// resident [`SmaService`] — the same session machine that serves
/// concurrent streams.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmaOptimizer {
    config: SmaConfig,
}

impl SmaOptimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: SmaConfig) -> Self {
        SmaOptimizer { config }
    }

    /// Optimizes `query` over `workers` worker nodes.
    ///
    /// # Panics
    /// Panics if the run fails (possible only with fault injection or a
    /// protocol bug); use [`SmaOptimizer::try_optimize`] for a typed
    /// error.
    // Audited panic site (crates/xtask/allow/panics.allow): documented
    // panicking convenience wrapper over the typed-error form.
    #[allow(clippy::expect_used)]
    pub fn optimize(
        &self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
        workers: usize,
    ) -> SmaOutcome {
        self.try_optimize(query, space, objective, workers)
            .expect("SMA optimization failed")
    }

    /// Fallible form of [`SmaOptimizer::optimize`]. SMA deliberately does
    /// **not** recover from worker loss: a lost replica would require
    /// re-broadcasting `Init` plus every `Delta` so far (the memo), so the
    /// protocol fails fast with that measured cost in the error.
    pub fn try_optimize(
        &self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
        workers: usize,
    ) -> Result<SmaOutcome, SmaError> {
        assert!(workers >= 1, "at least one worker required");
        let mut service = SmaService::spawn(workers, self.config)?;
        let result = service
            .submit(query, space, objective)
            .and_then(|handle| service.wait(handle));
        service.shutdown();
        result
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use mpq_cluster::Wire;
    use mpq_dp::optimize_serial;
    use mpq_model::{WorkloadConfig, WorkloadGenerator};

    fn query(n: usize, seed: u64) -> Query {
        WorkloadGenerator::new(WorkloadConfig::paper_default(n), seed).next_query()
    }

    #[test]
    fn sma_matches_serial_linear() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        for seed in 0..3 {
            let q = query(7, seed);
            let serial = optimize_serial(&q, PlanSpace::Linear, Objective::Single);
            for workers in [1usize, 2, 4] {
                let out = opt.optimize(&q, PlanSpace::Linear, Objective::Single, workers);
                assert_eq!(out.plans.len(), 1);
                let a = out.plans[0].cost().time;
                let b = serial.plans[0].cost().time;
                assert!(
                    (a - b).abs() <= 1e-9 * b.max(1.0),
                    "seed {seed} workers {workers}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn sma_matches_serial_bushy() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(6, 11);
        let serial = optimize_serial(&q, PlanSpace::Bushy, Objective::Single);
        let out = opt.optimize(&q, PlanSpace::Bushy, Objective::Single, 3);
        let a = out.plans[0].cost().time;
        let b = serial.plans[0].cost().time;
        assert!((a - b).abs() <= 1e-9 * b.max(1.0));
    }

    #[test]
    fn sma_multi_objective_matches_serial_frontier() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(6, 12);
        let serial = optimize_serial(&q, PlanSpace::Linear, Objective::Multi { alpha: 1.0 });
        let out = opt.optimize(&q, PlanSpace::Linear, Objective::Multi { alpha: 1.0 }, 4);
        assert_eq!(out.plans.len(), serial.plans.len());
        for sp in &serial.plans {
            assert!(out
                .plans
                .iter()
                .any(|pp| (pp.cost().time - sp.cost().time).abs() <= 1e-9 * sp.cost().time));
        }
    }

    #[test]
    fn sma_has_one_round_per_level() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(6, 13);
        let out = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 4);
        // init + (n-1) levels + finish = n + 1 rounds.
        assert_eq!(out.metrics.rounds, 7);
    }

    #[test]
    fn sma_network_grows_with_workers() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(8, 14);
        let b1 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 1);
        let b4 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 4);
        assert!(
            b4.metrics.network.total_bytes() > b1.metrics.network.total_bytes(),
            "broadcasts to more replicas must cost more bytes"
        );
    }

    #[test]
    fn sma_replica_memory_does_not_shrink_with_workers() {
        // The replicated memo is the scalability problem: every worker
        // stores the full table-set space regardless of parallelism.
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(8, 15);
        let m1 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 1);
        let m4 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 4);
        assert_eq!(
            m1.metrics.replica_stats.stored_sets,
            m4.metrics.replica_stats.stored_sets
        );
    }

    #[test]
    fn sma_single_table_query() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(1, 16);
        let out = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 2);
        assert_eq!(out.plans.len(), 1);
        assert_eq!(out.plans[0].num_joins(), 0);
    }

    #[test]
    fn sma_fault_free_try_optimize_succeeds() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(6, 17);
        let out = opt
            .try_optimize(&q, PlanSpace::Linear, Objective::Single, 3)
            .expect("fault-free run succeeds");
        // The recovery bill covers Init plus every Delta: it must exceed
        // what MPQ would pay to re-issue a task (the query bytes).
        assert!(out.metrics.replica_recovery_bytes > q.to_bytes().len() as u64);
    }

    #[test]
    fn sma_worker_loss_fails_fast_with_recovery_bill() {
        use mpq_cluster::FaultAction;
        // A plan that provably crashes some worker within the first three
        // messages it receives — always reached: every SMA worker gets
        // Init plus one message per level.
        let faults = FaultPlan {
            crash_prob: 1.0,
            min_survivors: 2,
            ..FaultPlan::NONE
        }
        .with_seed_where(3, 64, |s| {
            (0..3).any(|w| (0..3).any(|m| s.action(w, m) == FaultAction::CrashBeforeReply))
        })
        .expect("some seed crashes a worker early");
        let opt = SmaOptimizer::new(SmaConfig {
            faults,
            recv_timeout: Some(Duration::from_millis(20)),
            ..SmaConfig::default()
        });
        let q = query(7, 18);
        let err = opt
            .try_optimize(&q, PlanSpace::Linear, Objective::Single, 3)
            .expect_err("a lost replica must fail the run");
        match err {
            SmaError::WorkerLost {
                round,
                memo_rebroadcast_bytes,
                ..
            } => {
                assert!(round >= 1);
                // Recovery would re-ship at least the Init payload.
                assert!(memo_rebroadcast_bytes >= q.to_bytes().len() as u64);
            }
            other => panic!("expected WorkerLost, got {other}"),
        }
    }

    #[test]
    fn sma_recovery_bill_grows_with_query_size_unlike_mpq_tasks() {
        // The paper's contrast, as an executable assertion: SMA's replica
        // recovery bill grows like the memo (exponentially), MPQ's task
        // re-issue cost like the query (linearly).
        let opt = SmaOptimizer::new(SmaConfig::default());
        let bill = |n: usize| {
            let q = query(n, 19);
            let out = opt
                .try_optimize(&q, PlanSpace::Linear, Objective::Single, 2)
                .unwrap();
            (
                out.metrics.replica_recovery_bytes as f64,
                q.to_bytes().len() as f64,
            )
        };
        let (bill6, task6) = bill(6);
        let (bill9, task9) = bill(9);
        // Task (query) bytes grow ~linearly; the replica bill much faster.
        assert!(task9 / task6 < 2.5, "query bytes stay linear");
        assert!(
            bill9 / bill6 > 4.0,
            "replica recovery bill must grow super-linearly: {bill6} -> {bill9}"
        );
    }
}
