//! The SMA master protocol and worker logic.

use crate::message::{SlotUpdate, SmaMasterMsg, SmaReply};
use bytes::Bytes;
use mpq_cluster::{Cluster, Control, LatencyModel, NetworkSnapshot, Wire, WorkerCtx, WorkerLogic};
use mpq_cost::{CardinalityEstimator, Objective, ScanOp};
use mpq_dp::{compute_entries_for_set, reconstruct_plan, HashMemo, MemoStore, WorkerStats};
use mpq_model::{Query, TableSet};
use mpq_partition::PlanSpace;
use mpq_plan::{Plan, PlanEntry, PruningPolicy};
use std::time::Instant;

/// Configuration of the SMA baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmaConfig {
    /// Latency/overhead model of the simulated network.
    pub latency: LatencyModel,
}

/// Measurements of one SMA run.
#[derive(Clone, Debug, Default)]
pub struct SmaMetrics {
    /// End-to-end optimization time at the master, microseconds.
    pub total_micros: u64,
    /// Maximum cumulative pure compute time over workers, microseconds.
    pub max_worker_micros: u64,
    /// Network counters — note the contrast with MPQ: these grow with the
    /// memo size, i.e. exponentially in the query size.
    pub network: NetworkSnapshot,
    /// Per-worker cumulative compute time, microseconds.
    pub worker_compute_micros: Vec<u64>,
    /// Memory counters of the (fully replicated) memo on worker 0.
    pub replica_stats: WorkerStats,
    /// Number of coordination rounds (one per join-result cardinality).
    pub rounds: u64,
}

/// Result of one SMA optimization.
#[derive(Clone, Debug)]
pub struct SmaOutcome {
    /// The optimal plan (single-objective) or Pareto frontier.
    pub plans: Vec<Plan>,
    /// Run measurements.
    pub metrics: SmaMetrics,
}

/// Worker state after `Init`.
struct ReplicaState {
    query: Query,
    space: PlanSpace,
    objective: Objective,
    memo: HashMemo,
}

/// SMA worker logic: maintain a replicated memo, compute assigned slots,
/// apply broadcast deltas.
#[derive(Default)]
struct SmaWorker {
    state: Option<ReplicaState>,
}

impl WorkerLogic for SmaWorker {
    fn on_message(&mut self, payload: Bytes, ctx: &mut WorkerCtx) -> Control {
        let msg = match SmaMasterMsg::from_bytes(&payload) {
            Ok(m) => m,
            Err(_) => {
                // Protocol bug: reply empty so the master cannot deadlock.
                ctx.send_to_master(
                    SmaReply::LevelDone {
                        slots: Vec::new(),
                        micros: 0,
                    }
                    .to_bytes(),
                );
                return Control::Shutdown;
            }
        };
        match msg {
            SmaMasterMsg::Init {
                query,
                space,
                objective,
            } => {
                let n = query.num_tables();
                let mut memo = HashMemo::new(n);
                let policy = PruningPolicy::new(objective, n);
                let mut est = CardinalityEstimator::new(&query);
                for t in 0..n {
                    let cost = ScanOp::Full.cost(&mut est, t);
                    policy.try_insert(
                        memo.single_slot_mut(t),
                        PlanEntry::scan(t as u8, ScanOp::Full, cost),
                    );
                }
                drop(est);
                self.state = Some(ReplicaState {
                    query,
                    space,
                    objective,
                    memo,
                });
                Control::Continue
            }
            SmaMasterMsg::Assign { sets } => {
                let state = self.state.as_mut().expect("Init precedes Assign");
                let t0 = Instant::now();
                let policy = PruningPolicy::new(state.objective, state.query.num_tables());
                let mut est = CardinalityEstimator::new(&state.query);
                let mut stats = WorkerStats::default();
                let slots: Vec<SlotUpdate> = sets
                    .iter()
                    .map(|&set| SlotUpdate {
                        set,
                        entries: compute_entries_for_set(
                            state.space,
                            set,
                            &state.memo,
                            &mut est,
                            &policy,
                            &mut stats,
                        ),
                    })
                    .collect();
                let micros = t0.elapsed().as_micros() as u64;
                ctx.send_to_master(SmaReply::LevelDone { slots, micros }.to_bytes());
                Control::Continue
            }
            SmaMasterMsg::Delta { slots } => {
                let state = self.state.as_mut().expect("Init precedes Delta");
                for s in slots {
                    state.memo.replace_slot(s.set, s.entries);
                }
                Control::Continue
            }
            SmaMasterMsg::Finish => {
                let state = self.state.as_ref().expect("Init precedes Finish");
                let n = state.query.num_tables();
                let policy = PruningPolicy::new(state.objective, n);
                let mut est = CardinalityEstimator::new(&state.query);
                let full = TableSet::full(n);
                let entries: Vec<PlanEntry> = state.memo.entries(full).to_vec();
                let mut plans: Vec<Plan> = entries
                    .iter()
                    .map(|e| reconstruct_plan(&state.memo, &mut est, full, e))
                    .collect();
                if n == 1 {
                    plans = state
                        .memo
                        .single_entries(0)
                        .iter()
                        .map(|e| reconstruct_plan(&state.memo, &mut est, TableSet::singleton(0), e))
                        .collect();
                }
                policy.final_prune(&mut plans);
                let stats = WorkerStats {
                    stored_sets: state.memo.stored_sets(),
                    total_entries: state.memo.total_entries(),
                    ..WorkerStats::default()
                };
                ctx.send_to_master(SmaReply::Final { plans, stats }.to_bytes());
                Control::Continue
            }
        }
    }
}

/// The SMA optimizer: level-synchronized parallel DP with a replicated
/// memo, coordinated by the master.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmaOptimizer {
    config: SmaConfig,
}

impl SmaOptimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: SmaConfig) -> Self {
        SmaOptimizer { config }
    }

    /// Optimizes `query` over `workers` worker nodes.
    pub fn optimize(
        &self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
        workers: usize,
    ) -> SmaOutcome {
        assert!(workers >= 1, "at least one worker required");
        let n = query.num_tables();
        let cluster = Cluster::spawn(workers, self.config.latency, |_| SmaWorker::default());
        let start = Instant::now();

        // Initialization round: ship the query and statistics everywhere.
        cluster.metrics().record_round();
        let init = SmaMasterMsg::Init {
            query: query.clone(),
            space,
            objective,
        }
        .to_bytes();
        cluster.broadcast(&init, true);

        let mut compute = vec![0u64; workers];

        // One coordination round per join-result cardinality.
        for k in 2..=n {
            cluster.metrics().record_round();
            let sets: Vec<TableSet> = TableSet::subsets_of_size(n, k).collect();
            let participants = workers.min(sets.len());
            // Contiguous chunks — fine-grained task lists, as in the
            // prior algorithms SMA represents.
            let chunk = sets.len().div_ceil(participants);
            let mut sent = 0usize;
            for (w, batch) in sets.chunks(chunk).enumerate() {
                let msg = SmaMasterMsg::Assign {
                    sets: batch.to_vec(),
                };
                cluster.send(w, msg.to_bytes(), true);
                sent += 1;
            }
            // Collect level results and merge (sets are disjoint across
            // workers, so merging is concatenation).
            let mut level_slots: Vec<SlotUpdate> = Vec::new();
            for _ in 0..sent {
                let (w, payload) = cluster.recv();
                match SmaReply::from_bytes(&payload).expect("worker reply decodes") {
                    SmaReply::LevelDone { slots, micros } => {
                        compute[w] += micros;
                        level_slots.extend(slots);
                    }
                    SmaReply::Final { .. } => unreachable!("Final only follows Finish"),
                }
            }
            // Broadcast the merged level so every replica stays consistent
            // — this is the exponential-traffic step.
            let delta = SmaMasterMsg::Delta { slots: level_slots }.to_bytes();
            cluster.broadcast(&delta, false);
        }

        // Final round: any replica can produce the plan; ask worker 0.
        cluster.metrics().record_round();
        cluster.send(0, SmaMasterMsg::Finish.to_bytes(), false);
        let (_, payload) = cluster.recv();
        let (plans, replica_stats) =
            match SmaReply::from_bytes(&payload).expect("worker reply decodes") {
                SmaReply::Final { plans, stats } => (plans, stats),
                SmaReply::LevelDone { .. } => unreachable!("Finish yields Final"),
            };

        let total_micros = start.elapsed().as_micros() as u64;
        let network = cluster.metrics().snapshot();
        let rounds = network.rounds;
        cluster.shutdown();

        SmaOutcome {
            plans,
            metrics: SmaMetrics {
                total_micros,
                max_worker_micros: compute.iter().copied().max().unwrap_or(0),
                network,
                worker_compute_micros: compute,
                replica_stats,
                rounds,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_dp::optimize_serial;
    use mpq_model::{WorkloadConfig, WorkloadGenerator};

    fn query(n: usize, seed: u64) -> Query {
        WorkloadGenerator::new(WorkloadConfig::paper_default(n), seed).next_query()
    }

    #[test]
    fn sma_matches_serial_linear() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        for seed in 0..3 {
            let q = query(7, seed);
            let serial = optimize_serial(&q, PlanSpace::Linear, Objective::Single);
            for workers in [1usize, 2, 4] {
                let out = opt.optimize(&q, PlanSpace::Linear, Objective::Single, workers);
                assert_eq!(out.plans.len(), 1);
                let a = out.plans[0].cost().time;
                let b = serial.plans[0].cost().time;
                assert!(
                    (a - b).abs() <= 1e-9 * b.max(1.0),
                    "seed {seed} workers {workers}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn sma_matches_serial_bushy() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(6, 11);
        let serial = optimize_serial(&q, PlanSpace::Bushy, Objective::Single);
        let out = opt.optimize(&q, PlanSpace::Bushy, Objective::Single, 3);
        let a = out.plans[0].cost().time;
        let b = serial.plans[0].cost().time;
        assert!((a - b).abs() <= 1e-9 * b.max(1.0));
    }

    #[test]
    fn sma_multi_objective_matches_serial_frontier() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(6, 12);
        let serial = optimize_serial(&q, PlanSpace::Linear, Objective::Multi { alpha: 1.0 });
        let out = opt.optimize(&q, PlanSpace::Linear, Objective::Multi { alpha: 1.0 }, 4);
        assert_eq!(out.plans.len(), serial.plans.len());
        for sp in &serial.plans {
            assert!(out
                .plans
                .iter()
                .any(|pp| (pp.cost().time - sp.cost().time).abs() <= 1e-9 * sp.cost().time));
        }
    }

    #[test]
    fn sma_has_one_round_per_level() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(6, 13);
        let out = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 4);
        // init + (n-1) levels + finish = n + 1 rounds.
        assert_eq!(out.metrics.rounds, 7);
    }

    #[test]
    fn sma_network_grows_with_workers() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(8, 14);
        let b1 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 1);
        let b4 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 4);
        assert!(
            b4.metrics.network.total_bytes() > b1.metrics.network.total_bytes(),
            "broadcasts to more replicas must cost more bytes"
        );
    }

    #[test]
    fn sma_replica_memory_does_not_shrink_with_workers() {
        // The replicated memo is the scalability problem: every worker
        // stores the full table-set space regardless of parallelism.
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(8, 15);
        let m1 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 1);
        let m4 = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 4);
        assert_eq!(
            m1.metrics.replica_stats.stored_sets,
            m4.metrics.replica_stats.stored_sets
        );
    }

    #[test]
    fn sma_single_table_query() {
        let opt = SmaOptimizer::new(SmaConfig::default());
        let q = query(1, 16);
        let out = opt.optimize(&q, PlanSpace::Linear, Objective::Single, 2);
        assert_eq!(out.plans.len(), 1);
        assert_eq!(out.plans[0].num_joins(), 0);
    }
}
