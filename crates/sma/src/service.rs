//! The resident SMA service: interleaved level-synchronized sessions over
//! one long-lived cluster.
//!
//! SMA is the replicated-memo baseline, and keeping it resident makes the
//! paper's contrast sharper, not weaker: each in-flight query needs a
//! **full memo replica on every worker** (`O(2^n)` state per session per
//! node), built up over `n - 1` broadcast rounds — where a resident MPQ
//! worker holds no session state at all. The worker therefore keys its
//! replicas by [`QueryId`] and frees them on `Finish` (or on the
//! master's `Abort` when a session fails, so a resident worker's memory
//! tracks the in-flight set, not the history); the master drives
//! each session's level-synchronized state machine independently, so the
//! rounds of concurrent sessions interleave freely on the wire.
//!
//! Fault handling keeps the fail-fast doctrine per session: the protocol
//! never recovers a lost replica, it reports the measured
//! re-broadcast bill in a typed [`SmaError`]. A dead worker dooms every
//! in-flight session (each one had a replica on it).

// A server facade must never abort on caller error: every unwrap/expect
// on this master-side path is either removed or individually justified.

use crate::message::{SlotUpdate, SmaMasterMsg, SmaReply};
use crate::optimizer::{SmaConfig, SmaError, SmaMetrics, SmaOutcome};
use bytes::Bytes;
use mpq_cluster::{
    AbandonedList, Cluster, ClusterError, Control, NetworkMetrics, QueryId, Transport, Wire,
    WireListener, WorkerCtx, WorkerLogic,
};
use mpq_cost::{CardinalityEstimator, Objective, ScanOp};
use mpq_dp::{
    compute_entries_for_set, push_scope, reconstruct_plan, HashMemo, MemoStore, WorkerStats,
};
use mpq_model::{Query, TableSet};
use mpq_partition::PlanSpace;
use mpq_plan::cache::{query_signature, CacheKey, MemoCache};
use mpq_plan::{CacheWeight, Plan, PlanEntry, PruningPolicy};
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// Consecutive fruitless receive timeouts tolerated (with every worker
/// still alive) before a session is declared stalled.
const MAX_STRIKES: u32 = 64;

/// Most results a service parks for unredeemed handles before evicting
/// the oldest (abandoned handles must not leak memory on a long-lived
/// service).
const MAX_PARKED_RESULTS: usize = 4096;

/// Ticket for one submitted query; redeem with [`SmaService::wait`] or
/// check with [`SmaService::poll`]. Handles remember which service
/// instance minted them, so presenting one to a different service yields
/// a typed [`SmaError::UnknownHandle`] — never another session's result.
///
/// Dropping a handle **abandons** its session: on the next scheduler
/// entry the service frees its master-side state and sends the workers
/// `Abort` so their `O(2^n)` memo replicas for the session are freed —
/// abandoned handles must not pin replica memory until service teardown.
/// Dropping an already-redeemed handle is a no-op.
#[must_use = "redeem the handle with `wait`/`poll`, or drop it explicitly to abandon the query"]
#[derive(Debug)]
pub struct QueryHandle {
    id: QueryId,
    service: u64,
    abandoned: AbandonedList,
}

impl QueryHandle {
    /// The session id this handle tracks.
    pub fn id(&self) -> QueryId {
        self.id
    }
}

impl Drop for QueryHandle {
    fn drop(&mut self) {
        // Redeemed ids are no-ops at reap time.
        self.abandoned.push(self.id.0);
    }
}

/// One session's replica on one worker.
struct ReplicaState {
    query: Query,
    space: PlanSpace,
    objective: Objective,
    memo: HashMemo,
    /// Canonical cache-key prefix for this session's subproblems
    /// (signature + engine/space/objective tags), computed once at `Init`.
    slot_key_prefix: mpq_plan::cache::CacheKeyBuilder,
}

/// Engine tag distinguishing SMA memo-slot entries from the dp crate's
/// partition-plan entries in shared key space.
const ENGINE_SMA_SLOT: u8 = 2;

/// SMA worker logic: one replicated memo **per in-flight session**, keyed
/// by the session id; assigned slots are computed against the owning
/// session's replica, broadcast deltas are merged into it, and `Finish`
/// (or the master's `Abort`) frees it.
///
/// Independent of the per-session replicas, the worker may hold a
/// **shard-local cross-query cache** of finished memo slots: for a given
/// canonical query signature the replicated memo's state at every level
/// is identical across sessions (deltas are deterministic merges), so a
/// slot computed once can be served to any later session with the same
/// signature — byte-identical, and with zero extra network traffic.
pub(crate) struct SmaWorker {
    replicas: HashMap<u64, ReplicaState>,
    cache: MemoCache<Vec<PlanEntry>>,
}

impl SmaWorker {
    pub(crate) fn new(cache_bytes: usize) -> SmaWorker {
        SmaWorker {
            replicas: HashMap::new(),
            cache: MemoCache::new(cache_bytes),
        }
    }
}

/// One boxed SMA worker node's logic, for callers that host worker nodes
/// behind their own [`Transport`] rather than a [`Cluster`] or socket —
/// the schedule-space model checker dispatches messages to these inline.
/// Equivalent to what [`SmaService::spawn`] installs on each thread.
pub fn worker_logic(cache_bytes: usize) -> Box<dyn WorkerLogic> {
    Box::new(SmaWorker::new(cache_bytes))
}

impl WorkerLogic for SmaWorker {
    fn on_message(&mut self, query: QueryId, payload: Bytes, ctx: &mut WorkerCtx) -> Control {
        let msg = match SmaMasterMsg::from_bytes(&payload) {
            Ok(m) => m,
            Err(_) => {
                // Protocol bug: report it so the master fails the session
                // typed — an empty level result would silently merge a
                // hole into every replica. The worker stays up for its
                // other sessions.
                ctx.send_to_master(SmaReply::Malformed.to_bytes());
                return Control::Continue;
            }
        };
        match msg {
            SmaMasterMsg::Init {
                query: q,
                space,
                objective,
            } => {
                let n = q.num_tables();
                let mut memo = HashMemo::new(n);
                let policy = PruningPolicy::new(objective, n);
                let mut est = CardinalityEstimator::new(&q);
                for t in 0..n {
                    let cost = ScanOp::Full.cost(&mut est, t);
                    policy.try_insert(
                        memo.single_slot_mut(t),
                        PlanEntry::scan(t as u8, ScanOp::Full, cost),
                    );
                }
                drop(est);
                let mut slot_key_prefix = query_signature(&q);
                slot_key_prefix.push_u8(ENGINE_SMA_SLOT);
                push_scope(&mut slot_key_prefix, space, objective);
                self.replicas.insert(
                    query.0,
                    ReplicaState {
                        query: q,
                        space,
                        objective,
                        memo,
                        slot_key_prefix,
                    },
                );
                Control::Continue
            }
            SmaMasterMsg::Assign { sets } => {
                // Split the borrows: the cache and the session replica are
                // disjoint worker state.
                let SmaWorker { replicas, cache } = self;
                // The master always sends Init first and per-worker
                // delivery is FIFO, so a missing replica is a protocol
                // bug: report it typed instead of killing a resident
                // worker that still serves every other session.
                let Some(state) = replicas.get_mut(&query.0) else {
                    ctx.send_to_master(SmaReply::Malformed.to_bytes());
                    return Control::Continue;
                };
                let t0 = Instant::now();
                let policy = PruningPolicy::new(state.objective, state.query.num_tables());
                let mut est = CardinalityEstimator::new(&state.query);
                let mut stats = WorkerStats::default();
                let slots: Vec<SlotUpdate> = sets
                    .iter()
                    .map(|&set| {
                        let key: Option<CacheKey> = cache.is_enabled().then(|| {
                            let mut kb = state.slot_key_prefix.clone();
                            kb.push_u64(set.bits());
                            kb.finish()
                        });
                        if let Some(entries) = key.as_ref().and_then(|k| cache.get(k)) {
                            ctx.metrics()
                                .record_cache_hit(entries.weight_bytes() as u64);
                            return SlotUpdate { set, entries };
                        }
                        let entries = compute_entries_for_set(
                            state.space,
                            set,
                            &state.memo,
                            &mut est,
                            &policy,
                            &mut stats,
                        );
                        if let Some(k) = key {
                            ctx.metrics().record_cache_miss();
                            cache.insert(k, entries.clone());
                        }
                        SlotUpdate { set, entries }
                    })
                    .collect();
                let micros = t0.elapsed().as_micros() as u64;
                ctx.send_to_master(SmaReply::LevelDone { slots, micros }.to_bytes());
                Control::Continue
            }
            SmaMasterMsg::Delta { slots } => {
                let Some(state) = self.replicas.get_mut(&query.0) else {
                    ctx.send_to_master(SmaReply::Malformed.to_bytes());
                    return Control::Continue;
                };
                for s in slots {
                    state.memo.replace_slot(s.set, s.entries);
                }
                Control::Continue
            }
            SmaMasterMsg::Abort => {
                // The master gave up on the session; free its replica.
                // Tolerates an unknown id (the session may have failed
                // before this worker's Init arrived).
                self.replicas.remove(&query.0);
                Control::Continue
            }
            SmaMasterMsg::Finish => {
                // The session is over once the final plan ships: drop the
                // replica so a resident worker's memory does not grow with
                // the *history* of sessions, only with the in-flight set.
                let Some(state) = self.replicas.remove(&query.0) else {
                    ctx.send_to_master(SmaReply::Malformed.to_bytes());
                    return Control::Continue;
                };
                let n = state.query.num_tables();
                let policy = PruningPolicy::new(state.objective, n);
                let mut est = CardinalityEstimator::new(&state.query);
                let full = TableSet::full(n);
                let entries: Vec<PlanEntry> = state.memo.entries(full).to_vec();
                let mut plans: Vec<Plan> = entries
                    .iter()
                    .map(|e| reconstruct_plan(&state.memo, &mut est, full, e))
                    .collect();
                if n == 1 {
                    plans = state
                        .memo
                        .single_entries(0)
                        .iter()
                        .map(|e| reconstruct_plan(&state.memo, &mut est, TableSet::singleton(0), e))
                        .collect();
                }
                policy.final_prune(&mut plans);
                let stats = WorkerStats {
                    stored_sets: state.memo.stored_sets(),
                    total_entries: state.memo.total_entries(),
                    ..WorkerStats::default()
                };
                ctx.send_to_master(SmaReply::Final { plans, stats }.to_bytes());
                Control::Continue
            }
        }
    }
}

/// Where one session stands in the level-synchronized protocol.
enum Phase {
    /// Waiting for `awaiting` `LevelDone` replies of cardinality `k`.
    Level {
        k: usize,
        awaiting: usize,
        level_slots: Vec<SlotUpdate>,
    },
    /// `Finish` sent to worker 0; waiting for the `Final` reply.
    Finishing,
}

/// Master-side state of one in-flight SMA session.
struct Session {
    n: usize,
    phase: Phase,
    round: u64,
    recovery_bytes: u64,
    compute: Vec<u64>,
    strikes: u32,
    start: Instant,
    /// When this session last saw one of its own replies; the scheduler's
    /// per-session stall-suspicion clock.
    last_progress: Instant,
}

impl Session {
    fn lost(&self, e: ClusterError) -> SmaError {
        match e {
            ClusterError::WorkerLost { worker } => SmaError::WorkerLost {
                worker,
                round: self.round,
                memo_rebroadcast_bytes: self.recovery_bytes,
            },
            ClusterError::AllWorkersLost | ClusterError::SpawnFailed { .. } => {
                SmaError::WorkerLost {
                    worker: 0,
                    round: self.round,
                    memo_rebroadcast_bytes: self.recovery_bytes,
                }
            }
            ClusterError::Timeout { .. } => SmaError::Stalled {
                round: self.round,
                memo_rebroadcast_bytes: self.recovery_bytes,
            },
        }
    }
}

/// A long-lived SMA baseline service over one resident cluster. See the
/// module docs.
pub struct SmaService {
    cluster: Box<dyn Transport>,
    recv_timeout: Option<Duration>,
    /// Admission limit (0 = unlimited); see
    /// [`SmaConfig::max_in_flight`](crate::SmaConfig).
    max_in_flight: usize,
    /// This instance's identity, stamped into every handle it mints.
    service: u64,
    next_id: u64,
    /// Ordered maps so scheduler passes visit sessions in submission
    /// order — deterministic across runs, like the rest of the simulator.
    sessions: BTreeMap<u64, Session>,
    done: BTreeMap<u64, Result<SmaOutcome, SmaError>>,
    /// Session ids whose [`QueryHandle`] was dropped unredeemed; reaped
    /// (state freed, workers told to `Abort`) on the next scheduler entry.
    abandoned: AbandonedList,
}

impl SmaService {
    /// Spawns the resident cluster: `workers` worker threads under
    /// `config`'s latency model and fault plan, shared by every
    /// subsequently submitted query.
    pub fn spawn(workers: usize, config: SmaConfig) -> Result<SmaService, SmaError> {
        if workers == 0 {
            return Err(SmaError::BadRequest {
                reason: "at least one worker required",
            });
        }
        let cluster = Cluster::spawn_with_faults(workers, config.latency, &config.faults, |_| {
            SmaWorker::new(config.cache_bytes)
        })
        .map_err(SmaError::Cluster)?;
        SmaService::with_transport(Box::new(cluster), config)
    }

    /// Builds the service over an already-connected message plane — the
    /// entry point for real socket transports
    /// ([`SocketTransport`](mpq_cluster::SocketTransport)), whose worker
    /// processes run [`serve_socket_worker`]. `config`'s latency model
    /// and fault plan are ignored (those simulate a network; a real
    /// transport has one); its receive timeout governs stall detection
    /// exactly as on the simulated plane.
    pub fn with_transport(
        transport: Box<dyn Transport>,
        config: SmaConfig,
    ) -> Result<SmaService, SmaError> {
        if transport.num_workers() == 0 {
            return Err(SmaError::BadRequest {
                reason: "at least one worker required",
            });
        }
        Ok(SmaService {
            cluster: transport,
            recv_timeout: config.recv_timeout,
            max_in_flight: config.max_in_flight,
            service: mpq_cluster::mint_service_instance(),
            next_id: 0,
            sessions: BTreeMap::new(),
            done: BTreeMap::new(),
            abandoned: AbandonedList::new(),
        })
    }

    /// Number of resident worker nodes.
    pub fn num_workers(&self) -> usize {
        self.cluster.num_workers()
    }

    /// Sessions submitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.sessions.len()
    }

    /// The resident cluster's network counters (cumulative across every
    /// session the service has served).
    pub fn metrics(&self) -> &NetworkMetrics {
        self.cluster.metrics()
    }

    /// Submits `query`: ships `Init` to every replica and dispatches the
    /// first level, then returns with a handle. Subsequent levels are
    /// driven by [`SmaService::poll`] / [`SmaService::wait`].
    pub fn submit(
        &mut self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
    ) -> Result<QueryHandle, SmaError> {
        self.reap_abandoned();
        // Admission: refuse past the in-flight budget *before* the `Init`
        // broadcast, so a refused submission pins no replicas anywhere.
        // Reaping first means dropped-but-unreaped handles never count
        // against the caller.
        if self.max_in_flight > 0 && self.sessions.len() >= self.max_in_flight {
            return Err(SmaError::Overloaded {
                in_flight: self.sessions.len(),
                limit: self.max_in_flight,
            });
        }
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let n = query.num_tables();
        let mut session = Session {
            n,
            phase: Phase::Finishing, // placeholder; set below
            round: 0,
            recovery_bytes: 0,
            compute: vec![0; self.cluster.num_workers()],
            strikes: 0,
            start: Instant::now(),
            last_progress: Instant::now(),
        };
        // Initialization round: ship the query and statistics everywhere.
        session.round += 1;
        self.cluster.metrics().record_round();
        let init = SmaMasterMsg::Init {
            query: query.clone(),
            space,
            objective,
        }
        .to_bytes();
        session.recovery_bytes += init.len() as u64;
        let dispatched = self
            .cluster
            .broadcast(id, &init, true)
            .map_err(|e| session.lost(e))
            .and_then(|()| start_round(self.cluster.as_ref(), &mut session, id, 2));
        if let Err(e) = dispatched {
            // Workers reached before the failure already hold a replica
            // for a session that will never run; free them.
            abort_session(self.cluster.as_ref(), id);
            return Err(e);
        }
        self.sessions.insert(id.0, session);
        Ok(QueryHandle {
            id,
            service: self.service,
            abandoned: self.abandoned.clone(),
        })
    }

    /// Non-blocking check: drains replies that have already arrived and
    /// returns the result once the handle's session has finished. A
    /// result is delivered exactly once; after `Some`, the handle is
    /// spent.
    pub fn poll(&mut self, handle: &QueryHandle) -> Option<Result<SmaOutcome, SmaError>> {
        if handle.service != self.service {
            // A handle from another service instance: its raw session id
            // may collide with one of ours, so reject before any lookup.
            return Some(Err(SmaError::UnknownHandle { id: handle.id }));
        }
        self.reap_abandoned();
        loop {
            if self.done.contains_key(&handle.id.0) {
                break;
            }
            match self.cluster.try_recv() {
                Ok((worker, qid, payload)) => self.route(worker, qid, payload),
                Err(ClusterError::Timeout { .. }) => {
                    // Nothing waiting right now: run the suspicion pass;
                    // if no session was due, hand control back.
                    if !self.check_suspicions() {
                        break;
                    }
                }
                Err(err) => {
                    self.fail_all(err);
                    break;
                }
            }
        }
        self.done.remove(&handle.id.0)
    }

    /// Blocks until the handle's session finishes, driving every
    /// in-flight session's rounds in the meantime.
    ///
    /// A handle whose result was already taken via [`SmaService::poll`]
    /// (or that belongs to a different service) yields a typed
    /// [`SmaError::UnknownHandle`], never a panic.
    pub fn wait(&mut self, handle: QueryHandle) -> Result<SmaOutcome, SmaError> {
        if handle.service != self.service {
            // See poll: foreign handles are rejected before any lookup.
            return Err(SmaError::UnknownHandle { id: handle.id });
        }
        self.reap_abandoned();
        loop {
            if let Some(result) = self.done.remove(&handle.id.0) {
                return result;
            }
            if !self.sessions.contains_key(&handle.id.0) {
                return Err(SmaError::UnknownHandle { id: handle.id });
            }
            self.drive_scheduler_once();
        }
    }

    /// Blocking submit: parks on the blocking receive loop whenever the
    /// admission limit refuses the query, driving the in-flight sessions'
    /// rounds until capacity frees, then submits. Every non-`Overloaded`
    /// outcome (success or typed failure) is returned as-is, so this is
    /// exactly [`SmaService::submit`] plus backpressure parking.
    pub fn submit_wait(
        &mut self,
        query: &Query,
        space: PlanSpace,
        objective: Objective,
    ) -> Result<QueryHandle, SmaError> {
        loop {
            match self.submit(query, space, objective) {
                Err(SmaError::Overloaded { .. }) => {
                    // Overloaded implies at least one session in flight
                    // (the limit is >= 1); its level-synchronized rounds
                    // finish or fail under the same receive passes that
                    // drive `wait`, so capacity frees eventually.
                    self.drive_scheduler_once();
                }
                other => return other,
            }
        }
    }

    /// One pass of the blocking scheduler: receive/route one reply (with
    /// the configured stall timeout, if any), then run the suspicion pass.
    fn drive_scheduler_once(&mut self) {
        let received = match self.recv_timeout {
            Some(t) => self.cluster.recv_timeout(t),
            None => self.cluster.recv(),
        };
        match received {
            Ok((worker, qid, payload)) => self.route(worker, qid, payload),
            Err(ClusterError::Timeout { .. }) => {}
            Err(err) => self.fail_all(err),
        }
        self.check_suspicions();
    }

    /// Shuts the resident cluster down, joining every worker thread.
    pub fn shutdown(mut self) {
        self.cluster.shutdown();
    }

    /// Frees the state of sessions whose handle was dropped unredeemed:
    /// master-side session state, parked results, and — crucially for SMA
    /// — the `O(2^n)` memo replicas the session pinned on every worker
    /// (via `Abort`). Called on every scheduler entry; public so
    /// long-idle callers can reap eagerly.
    pub fn reap_abandoned(&mut self) {
        // Canonical (ascending-id) order: push order depends on when each
        // handle happened to be dropped, and the reaping order must be
        // replayable under the schedule-space model checker.
        for id in self.abandoned.drain_ordered() {
            if self.sessions.remove(&id).is_some() {
                abort_session(self.cluster.as_ref(), QueryId(id));
            }
            self.done.remove(&id);
        }
    }

    /// Routes one session-tagged reply and advances that session's
    /// level-synchronized state machine.
    fn route(&mut self, worker: usize, qid: QueryId, payload: Bytes) {
        enum Advance {
            Pending,
            Finished(Vec<Plan>, WorkerStats),
            Failed(SmaError),
        }
        let advance = {
            let Some(session) = self.sessions.get_mut(&qid.0) else {
                // A reply for a session that already failed; SMA issues no
                // speculative work, so there is nothing to account.
                return;
            };
            session.strikes = 0;
            session.last_progress = Instant::now();
            match SmaReply::from_bytes(&payload) {
                Err(source) => Advance::Failed(SmaError::Decode { worker, source }),
                Ok(SmaReply::Malformed) => Advance::Failed(SmaError::Protocol { worker }),
                Ok(SmaReply::LevelDone { slots, micros }) => match &mut session.phase {
                    // Out-of-phase reply: a protocol bug, failed typed
                    // rather than panicking a resident master.
                    Phase::Finishing => Advance::Failed(SmaError::Protocol { worker }),
                    Phase::Level {
                        k,
                        awaiting,
                        level_slots,
                    } => {
                        session.compute[worker] += micros;
                        level_slots.extend(slots);
                        *awaiting -= 1;
                        if *awaiting > 0 {
                            Advance::Pending
                        } else {
                            // Level complete: broadcast the merged slots
                            // so every replica stays consistent — the
                            // exponential-traffic step, and the reason a
                            // replacement replica costs the full running
                            // bill — then dispatch the next level.
                            let k = *k;
                            let slots = std::mem::take(level_slots);
                            let delta = SmaMasterMsg::Delta { slots }.to_bytes();
                            session.recovery_bytes += delta.len() as u64;
                            match self
                                .cluster
                                .broadcast(qid, &delta, false)
                                .map_err(|e| session.lost(e))
                                .and_then(|()| {
                                    start_round(self.cluster.as_ref(), session, qid, k + 1)
                                }) {
                                Ok(()) => Advance::Pending,
                                Err(e) => Advance::Failed(e),
                            }
                        }
                    }
                },
                Ok(SmaReply::Final { plans, stats }) => {
                    if matches!(session.phase, Phase::Finishing) {
                        Advance::Finished(plans, stats)
                    } else {
                        Advance::Failed(SmaError::Protocol { worker })
                    }
                }
            }
        };
        match advance {
            Advance::Pending => {}
            Advance::Finished(plans, stats) => self.finish(qid, plans, stats),
            Advance::Failed(err) => self.fail(qid, err),
        }
    }

    /// Per-session stall suspicion: every session that has gone a full
    /// receive timeout without one of its own replies is examined — a
    /// provably dead worker dooms it at once (its replica lived there:
    /// the paper's recovery argument), otherwise it accumulates strikes
    /// toward a stall. The clock is per session, so a busy reply stream
    /// from other sessions cannot mask a stuck one. Returns whether any
    /// session fired.
    fn check_suspicions(&mut self) -> bool {
        let Some(t) = self.recv_timeout else {
            return false;
        };
        let dead = self.cluster.dead_workers().first().copied();
        let due: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.last_progress.elapsed() >= t)
            .map(|(&id, _)| id)
            .collect();
        for &raw in &due {
            let Some(session) = self.sessions.get_mut(&raw) else {
                continue;
            };
            session.last_progress = Instant::now();
            // One suspicion event per session, mirrored in the metrics.
            self.cluster.metrics().record_timeout();
            if let Some(worker) = dead {
                let err = SmaError::WorkerLost {
                    worker,
                    round: session.round,
                    memo_rebroadcast_bytes: session.recovery_bytes,
                };
                self.fail(QueryId(raw), err);
                continue;
            }
            session.strikes += 1;
            if session.strikes >= MAX_STRIKES {
                let err = SmaError::Stalled {
                    round: session.round,
                    memo_rebroadcast_bytes: session.recovery_bytes,
                };
                self.fail(QueryId(raw), err);
            }
        }
        !due.is_empty()
    }

    fn finish(&mut self, qid: QueryId, plans: Vec<Plan>, replica_stats: WorkerStats) {
        let Some(session) = self.sessions.remove(&qid.0) else {
            // Internal invariant (route only finishes live sessions), but
            // a resident master must not abort if it is ever violated.
            return;
        };
        let network = self.cluster.metrics().snapshot();
        // Worker 0 freed its replica when it handled `Finish`; tell the
        // *other* workers to free theirs too — a resident worker's memory
        // must track the in-flight set, not the history of sessions.
        let abort = SmaMasterMsg::Abort.to_bytes();
        for w in 1..self.cluster.num_workers() {
            let _ = self.cluster.send(w, qid, abort.clone(), false);
        }
        let metrics = SmaMetrics {
            total_micros: session.start.elapsed().as_micros() as u64,
            max_worker_micros: session.compute.iter().copied().max().unwrap_or(0),
            network,
            worker_compute_micros: session.compute,
            replica_stats,
            rounds: session.round,
            replica_recovery_bytes: session.recovery_bytes,
        };
        self.park_result(qid, Ok(SmaOutcome { plans, metrics }));
    }

    fn fail(&mut self, qid: QueryId, err: SmaError) {
        self.sessions.remove(&qid.0);
        // Free the session's replicas on the surviving workers: a failed
        // session must not leak O(2^n) memo state on a resident cluster.
        abort_session(self.cluster.as_ref(), qid);
        self.park_result(qid, Err(err));
    }

    /// Parks a finished session's result for its handle, evicting the
    /// oldest unredeemed result beyond [`MAX_PARKED_RESULTS`].
    fn park_result(&mut self, qid: QueryId, result: Result<SmaOutcome, SmaError>) {
        self.done.insert(qid.0, result);
        while self.done.len() > MAX_PARKED_RESULTS {
            self.done.pop_first();
        }
    }

    fn fail_all(&mut self, err: ClusterError) {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        for raw in ids {
            let Some(session) = self.sessions.get(&raw) else {
                continue;
            };
            let e = session.lost(err.clone());
            self.fail(QueryId(raw), e);
        }
    }
}

/// Runs one SMA worker **process**: accepts a single master connection on
/// `listener` and serves the SMA replica protocol over it until the
/// master disconnects or orders shutdown. The logic is the same
/// `SmaWorker` the in-process cluster drives, so a socket master
/// observes byte-identical protocol behavior.
pub fn serve_socket_worker(listener: &WireListener, cache_bytes: usize) -> std::io::Result<()> {
    mpq_cluster::serve_worker(listener, SmaWorker::new(cache_bytes))
}

/// Best-effort `Abort` to every worker so a finished-by-failure session's
/// replicas are freed; sends to dead workers are ignored (their memory is
/// gone with them).
fn abort_session(cluster: &dyn Transport, id: QueryId) {
    let abort = SmaMasterMsg::Abort.to_bytes();
    for w in 0..cluster.num_workers() {
        let _ = cluster.send(w, id, abort.clone(), false);
    }
}

/// Dispatches round `k` of a session: `Assign` messages for the level's
/// table sets (contiguous chunks, fine-grained task lists), or `Finish`
/// once every level is done.
fn start_round(
    cluster: &dyn Transport,
    session: &mut Session,
    id: QueryId,
    k: usize,
) -> Result<(), SmaError> {
    session.round += 1;
    cluster.metrics().record_round();
    if k > session.n {
        // Final round: any replica can produce the plan; ask worker 0.
        cluster
            .send(0, id, SmaMasterMsg::Finish.to_bytes(), false)
            .map_err(|e| session.lost(e))?;
        session.phase = Phase::Finishing;
        return Ok(());
    }
    let sets: Vec<TableSet> = TableSet::subsets_of_size(session.n, k).collect();
    let participants = cluster.num_workers().min(sets.len());
    let chunk = sets.len().div_ceil(participants);
    let mut sent = 0usize;
    for (w, batch) in sets.chunks(chunk).enumerate() {
        let msg = SmaMasterMsg::Assign {
            sets: batch.to_vec(),
        };
        cluster
            .send(w, id, msg.to_bytes(), true)
            .map_err(|e| session.lost(e))?;
        sent += 1;
    }
    session.phase = Phase::Level {
        k,
        awaiting: sent,
        level_slots: Vec::new(),
    };
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use mpq_dp::optimize_serial;
    use mpq_model::{WorkloadConfig, WorkloadGenerator};

    fn query(n: usize, seed: u64) -> Query {
        WorkloadGenerator::new(WorkloadConfig::paper_default(n), seed).next_query()
    }

    fn rel_eq(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * b.abs().max(1.0)
    }

    #[test]
    fn interleaved_sessions_keep_replicas_apart() {
        // Several queries of different sizes in flight at once: their
        // levels interleave on the wire, and every result must match the
        // serial reference for its own query.
        let mut svc = SmaService::spawn(3, SmaConfig::default()).unwrap();
        let queries: Vec<Query> = (0..6)
            .map(|s| query(4 + (s as usize % 3), s + 20))
            .collect();
        let handles: Vec<QueryHandle> = queries
            .iter()
            .map(|q| {
                svc.submit(q, PlanSpace::Linear, Objective::Single)
                    .expect("submit")
            })
            .collect();
        assert_eq!(svc.in_flight(), 6);
        for (q, handle) in queries.iter().zip(handles).rev() {
            let out = svc.wait(handle).expect("session completes");
            let reference = optimize_serial(q, PlanSpace::Linear, Objective::Single).plans[0]
                .cost()
                .time;
            assert!(rel_eq(out.plans[0].cost().time, reference));
        }
        svc.shutdown();
    }

    /// Regression (ISSUE 4 satellite): dropping an unredeemed handle must
    /// free the session's master-side state and its worker replicas
    /// instead of pinning `O(2^n)` memory until service teardown.
    #[test]
    fn dropped_handles_release_sessions_and_replicas() {
        let mut svc = SmaService::spawn(2, SmaConfig::default()).unwrap();
        let q = query(6, 40);
        let abandoned = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .expect("submit");
        assert_eq!(svc.in_flight(), 1);
        drop(abandoned);
        // The next scheduler entry reaps it (and sends the workers
        // `Abort`); a follow-up session streams through unaffected.
        let handle = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .expect("submit");
        assert_eq!(svc.in_flight(), 1, "the dropped session is gone");
        let out = svc.wait(handle).expect("live session completes");
        assert_eq!(out.plans.len(), 1);
        assert_eq!(svc.in_flight(), 0);
        svc.shutdown();
    }

    #[test]
    fn warm_shard_caches_answer_repeated_queries_identically() {
        let config = SmaConfig {
            cache_bytes: 1 << 20,
            ..SmaConfig::default()
        };
        let mut svc = SmaService::spawn(3, config).unwrap();
        let q = query(6, 41);
        let cold = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .and_then(|h| svc.wait(h))
            .expect("cold run");
        let after_cold = svc.metrics().snapshot();
        assert!(after_cold.cache_misses > 0);
        assert_eq!(after_cold.cache_hits, 0);
        let warm = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .and_then(|h| svc.wait(h))
            .expect("warm run");
        let after_warm = svc.metrics().snapshot();
        assert_eq!(
            after_warm.cache_hits, after_cold.cache_misses,
            "every slot repeats on the same worker shard"
        );
        assert_eq!(warm.plans, cold.plans, "hits are byte-identical");
        assert!(after_warm.cache_bytes_saved > 0);
        svc.shutdown();
    }

    #[test]
    fn replicas_are_freed_after_finish() {
        // The recovery bill of a later session must not include an
        // earlier session's memo: sessions are accounted independently.
        let mut svc = SmaService::spawn(2, SmaConfig::default()).unwrap();
        let q = query(6, 30);
        let a = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        let bill_a = svc.wait(a).unwrap().metrics.replica_recovery_bytes;
        let b = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        let bill_b = svc.wait(b).unwrap().metrics.replica_recovery_bytes;
        assert_eq!(bill_a, bill_b, "per-session bills are independent");
        svc.shutdown();
    }

    /// Regression (ISSUE 5 satellite): redeeming a handle twice —
    /// poll-then-wait — must yield a typed error, never a panic.
    #[test]
    fn poll_then_wait_is_a_typed_error() {
        let mut svc = SmaService::spawn(2, SmaConfig::default()).unwrap();
        let q = query(5, 50);
        let handle = svc
            .submit(&q, PlanSpace::Linear, Objective::Single)
            .unwrap();
        let mut polled = false;
        for _ in 0..10_000 {
            if svc.poll(&handle).is_some() {
                polled = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        assert!(polled, "the session completes");
        let id = handle.id();
        let err = svc.wait(handle).expect_err("the result was already taken");
        assert_eq!(err, SmaError::UnknownHandle { id });
        svc.shutdown();
    }
}
