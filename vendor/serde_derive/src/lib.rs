//! Vendored no-op stand-in for serde's derive macros.
//!
//! Nothing in this workspace serializes through serde yet — the types only
//! carry `#[derive(Serialize, Deserialize)]` so that downstream users (and
//! future PRs) can flip to the real serde by editing one line in
//! `[workspace.dependencies]`. These derives accept the same input
//! (including `#[serde(...)]` helper attributes) and expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
