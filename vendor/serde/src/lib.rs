//! Vendored stand-in for the `serde` facade crate.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` (the wire
//! codec in `mpq_cluster` is hand-rolled), so this crate re-exports no-op
//! derive macros under the usual names. Swap the `serde` entry in
//! `[workspace.dependencies]` to the registry version to get real
//! serialization.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
