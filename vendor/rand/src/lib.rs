//! Vendored, API-compatible subset of the `rand` crate (0.9-style API).
//!
//! This build environment has no registry access, so the workspace ships the
//! slice of the `rand` API it uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], `Rng::{random, random_range, random_bool}`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic across platforms, which the workload tests
//! rely on. Distributions use straightforward rejection-free mappings
//! (multiply-shift for integers, 53-bit mantissa for floats); statistical
//! quality is more than adequate for workload synthesis and heuristics.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the minimal core every distribution builds on.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key schedule).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`f64` in the unit
    /// interval, uniform integers, fair `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                let (lo, hi) = (low as i128, high as i128);
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "cannot sample from empty range {low}..{high}");
                // Lemire multiply-shift: maps 64 bits onto [0, span) with
                // bias < span / 2^64, immaterial at these span sizes.
                let x = rng.next_u64() as u128;
                let offset = ((x * span as u128) >> 64) as i128;
                (lo + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(low <= high, "cannot sample from empty range {low}..={high}");
                } else {
                    assert!(low < high, "cannot sample from empty range {low}..{high}");
                }
                let u = unit_f64(rng.next_u64()) as $t;
                let v = low + u * (high - low);
                // `u` lives in [0, 1) as f64, but narrowing to f32 (or the
                // final fma-less arithmetic) can round up to exactly `high`;
                // keep the half-open contract by stepping just below it.
                if !inclusive && v >= high {
                    high.next_down().max(low)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range types usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform(rng, start, end, true)
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed, per Blackman &
            // Vigna's recommendation for seeding xoshiro state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore, SampleUniform};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_uniform(rng, 0, i + 1, false);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5..=9usize);
            assert!((5..=9).contains(&w));
            let f = rng.random_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&f));
            let u = rng.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_exclusive_float_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(1.0f64..1.0);
    }

    #[test]
    fn half_open_f32_range_excludes_upper_bound() {
        // f64→f32 narrowing can round toward the bound; the sampler must
        // still honor the half-open contract.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100_000 {
            let v = rng.random_range(0.0f32..1.0f32);
            assert!(v < 1.0, "half-open draw hit the excluded bound");
        }
        let tight = rng.random_range(1.0f64..1.0000000000000002);
        assert!(tight < 1.0000000000000002);
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }
}
