//! Vendored, API-compatible subset of the `proptest` framework.
//!
//! This build environment has no registry access, so the workspace ships the
//! slice of proptest it uses: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, range / tuple / `Just` / `prop_oneof!` / mapped
//! strategies, `any::<T>()`, `collection::vec`, and `num::f64::NORMAL`.
//!
//! The significant simplification versus real proptest: **no shrinking**.
//! A failing case reports the generated inputs (via the panic message of the
//! failing assertion) but is not minimized. Generation is deterministic per
//! test binary run (fixed base seed, advanced per case), so failures
//! reproduce across runs. Swap the `proptest` entry in
//! `[workspace.dependencies]` to the registry crate for full shrinking.

pub mod test_runner {
    //! Case execution: configuration, RNG plumbing, failure type.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Drives value generation for one test.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// Creates a runner with the fixed base seed (deterministic runs).
        pub fn new(_config: &ProptestConfig) -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(0x5052_4F50_5445_5354), // "PROPTEST"
            }
        }

        /// The underlying RNG, for strategy implementations.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    /// A failed test case (a `prop_assert!` that did not hold).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            self.0.generate(runner)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// Uniform choice among alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            let i = runner.rng().random_range(0..self.options.len());
            self.options[i].generate(runner)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

pub mod arbitrary {
    //! `any::<T>()`: the canonical full-range strategy per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Types with a canonical strategy covering their whole domain.
    pub trait Arbitrary: Sized {
        /// That canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` (full domain).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain integer strategy.
    pub struct AnyInt<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    // All bit patterns equally likely.
                    runner.rng().random::<u64>() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyInt(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Fair coin strategy.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.rng().random::<bool>()
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> Self::Strategy {
            AnyBool
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::ops::Range;

    /// Generates `Vec`s whose length is uniform over `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range for collection::vec");
        VecStrategy { element, size }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = runner.rng().random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod num {
    //! Numeric special-value strategies.

    #[allow(nonstandard_style)]
    pub mod f64 {
        //! Strategies over `f64`.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRunner;
        use rand::Rng;

        /// Generates normal (non-zero, non-subnormal, finite, non-NaN)
        /// `f64` values of either sign, spanning the full exponent range.
        pub struct Normal;

        /// The canonical instance of [`Normal`].
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = core::primitive::f64;
            fn generate(&self, runner: &mut TestRunner) -> core::primitive::f64 {
                // sign: 1 bit; exponent: uniform in [1, 2046] (never zero /
                // subnormal / inf / NaN); mantissa: 52 random bits.
                let sign = (runner.rng().random::<u64>() & 1) << 63;
                let exponent: u64 = runner.rng().random_range(1..=2046u64) << 52;
                let mantissa = runner.rng().random::<u64>() >> 12;
                core::primitive::f64::from_bits(sign | exponent | mantissa)
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Named access to strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset of real proptest this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_test(x in 0u64..10, v in prop::collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(&config);
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut runner);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}",
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Like `assert!` but reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!` but reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    l,
                    r
                );
            }
        }
    };
}

/// Like `assert_ne!` but reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 5usize..=9, f in 0.25..=0.75f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn tuples_and_any(t in (0u32..4, any::<u64>(), 0.0..1.0f64)) {
            prop_assert!(t.0 < 4);
            prop_assert!(t.2 >= 0.0 && t.2 < 1.0);
        }

        #[test]
        fn normal_floats_are_normal(x in prop::num::f64::NORMAL) {
            prop_assert!(x.is_finite() && x != 0.0 && x.is_normal());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_assertion_panics_with_context() {
        proptest! {
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
