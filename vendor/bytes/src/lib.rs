//! Vendored, API-compatible subset of the `bytes` crate.
//!
//! This build environment has no registry access, so the workspace ships the
//! slice of the `bytes` API it actually uses: [`Bytes`] (cheaply clonable,
//! immutable), [`BytesMut`] (growable), and the little-endian accessor
//! methods of [`Buf`] / [`BufMut`]. Semantics match the real crate for this
//! subset; swap the `bytes` entry in `[workspace.dependencies]` to the
//! registry version to use the real thing.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous slice of memory.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with at least the given capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a buffer of bytes, advancing an internal cursor.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer of bytes.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64` (IEEE-754 bits).
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f64_le(1.5);
        let bytes = buf.freeze();
        let mut r: &[u8] = &bytes;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::copy_from_slice(b"abc");
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
