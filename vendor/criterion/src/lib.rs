//! Vendored, API-compatible subset of the `criterion` benchmark harness.
//!
//! Implements `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros. The
//! measurement loop is a simple calibrated-batch timer (no bootstrap
//! statistics or HTML reports): it warms up, sizes a batch to ~50 ms, runs
//! a fixed number of batches, and prints min/median/mean per-iteration
//! times. Good enough to compare kernels on one machine; swap the
//! `criterion` entry in `[workspace.dependencies]` for the registry crate
//! to get the full harness.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The vendored harness times each
/// routine invocation individually, so the hint only bounds batch memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches are fine.
    SmallInput,
    /// Large inputs: keep few alive at once.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

impl BatchSize {
    fn inputs_per_batch(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Collected per-iteration samples for one benchmark.
struct Samples {
    nanos_per_iter: Vec<f64>,
}

impl Samples {
    fn report(mut self, id: &str) {
        assert!(!self.nanos_per_iter.is_empty(), "no samples for {id}");
        self.nanos_per_iter
            .sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let n = self.nanos_per_iter.len();
        let min = self.nanos_per_iter[0];
        let median = self.nanos_per_iter[n / 2];
        let mean = self.nanos_per_iter.iter().sum::<f64>() / n as f64;
        println!(
            "{id:<40} min {:>12}  median {:>12}  mean {:>12}  ({n} samples)",
            fmt_nanos(min),
            fmt_nanos(median),
            fmt_nanos(mean),
        );
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Drives the timing loops of one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: Samples,
}

impl Bencher {
    /// Times `routine`, called repeatedly in calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: how many iterations fit in one sample?
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let target_sample = 0.01f64; // seconds per sample
        let batch = ((target_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let nanos = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.nanos_per_iter.push(nanos);
        }
    }

    /// Times `routine` on inputs produced by `setup`; only the routine is
    /// timed, never the setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_batch = size.inputs_per_batch();
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let count = inputs.len() as f64;
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let nanos = t0.elapsed().as_nanos() as f64 / count;
            self.samples.nanos_per_iter.push(nanos);
        }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up = dur;
        self
    }

    /// Sets the measurement time per benchmark.
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measure = dur;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            samples: Samples {
                nanos_per_iter: Vec::new(),
            },
        };
        f(&mut b);
        b.samples.report(id);
        self
    }
}

/// Declares a benchmark group function, as in the real criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(20),
        };
        c.bench_function("smoke_iter", |b| b.iter(|| 2u64 + 2));
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn nanos_formatting() {
        assert!(fmt_nanos(5.0).ends_with("ns"));
        assert!(fmt_nanos(5e4).ends_with("µs"));
        assert!(fmt_nanos(5e7).ends_with("ms"));
        assert!(fmt_nanos(5e9).ends_with('s'));
    }
}
