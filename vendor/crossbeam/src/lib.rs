//! Vendored, API-compatible subset of the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by this
//! workspace; it is backed by `std::sync::mpsc`, which has the same
//! semantics for the single-consumer channels this codebase builds
//! (per-worker inboxes and one master inbox). Swap the `crossbeam` entry in
//! `[workspace.dependencies]` to the registry version to use the real thing.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
    }

    // `mpsc::Sender` is `Clone`; derive would needlessly require `T: Clone`.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, std::sync::mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocks until a message arrives, every sender disconnected, or
        /// `timeout` elapsed.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41).unwrap());
            tx.send(1).unwrap();
            let sum = rx.recv().unwrap() + rx.recv().unwrap();
            assert_eq!(sum, 42);
        }

        #[test]
        fn recv_fails_after_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            let short = std::time::Duration::from_millis(5);
            assert_eq!(rx.recv_timeout(short), Err(RecvTimeoutError::Timeout));
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(short), Ok(7));
            drop(tx);
            assert_eq!(rx.recv_timeout(short), Err(RecvTimeoutError::Disconnected));
        }
    }
}
