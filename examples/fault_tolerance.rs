//! Fault tolerance demo: the paper's Spark re-execution argument, live.
//!
//! Spawns the same query on the same simulated cluster twice under a
//! deterministic fault plan that crashes workers and delays stragglers:
//!
//! * **MPQ** recovers — every lost partition range is re-issued to a
//!   surviving worker as one `O(b_q)` task, and the final plan cost is
//!   bit-identical to the fault-free run;
//! * **SMA** fails fast with a typed error carrying the measured cost of
//!   the alternative: re-broadcasting a replica's memo.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use pqopt::cluster::{FaultPlan, Wire};
use pqopt::mpq::RetryPolicy;
use pqopt::prelude::*;
use pqopt::sma::{SmaConfig, SmaOptimizer};
use std::time::Duration;

fn main() {
    let tables = 12;
    let workers = 8;
    let query = WorkloadGenerator::new(WorkloadConfig::paper_default(tables), 42).next_query();

    // A hostile but survivable cluster: roughly half the workers crash,
    // some replies are dropped, some straggle 30 ms. Same seed → same
    // fault schedule, run after run.
    let faults = FaultPlan {
        seed: 7,
        crash_prob: 0.5,
        crash_after_reply_prob: 0.2,
        drop_prob: 0.15,
        straggle_prob: 0.2,
        straggle_us: 30_000,
        min_survivors: 1,
    };
    let schedule = faults.schedule(workers);
    println!(
        "{tables}-table query on {workers} workers; fault schedule (seed {}) will crash workers {:?}",
        faults.seed,
        schedule.crashing_workers()
    );

    // Reference: the fault-free optimum.
    let fault_free = MpqOptimizer::new(MpqConfig::default()).optimize(
        &query,
        PlanSpace::Linear,
        Objective::Single,
        workers as u64,
    );
    let reference = fault_free.plans[0].cost().time;

    // MPQ under fire, with retries and speculative re-execution.
    let mpq = MpqOptimizer::new(MpqConfig {
        faults,
        retry: RetryPolicy::with_timeout(64, Duration::from_millis(15)),
        ..MpqConfig::default()
    });
    match mpq.try_optimize(&query, PlanSpace::Linear, Objective::Single, workers as u64) {
        Ok(out) => {
            let m = &out.metrics;
            println!("\nMPQ survived:");
            println!(
                "  optimal cost     {:>14.2}  (fault-free: {:.2})",
                out.plans[0].cost().time,
                reference
            );
            println!("  crashes injected {:>14}", m.network.crashes);
            println!("  replies dropped  {:>14}", m.network.drops);
            println!("  stragglers       {:>14}", m.network.straggles);
            println!("  master timeouts  {:>14}", m.network.timeouts);
            println!("  task re-issues   {:>14}", m.retries);
            println!("  duplicate work   {:>14}", m.duplicate_replies);
            println!(
                "  recovery bytes   {:>14}  (re-issued tasks, O(b_q) each)",
                m.retry_task_bytes
            );
            assert_eq!(
                out.plans[0].cost().time,
                reference,
                "faults must not change the optimum"
            );
        }
        Err(e) => println!("\nMPQ failed (retry budget too small for this plan): {e}"),
    }

    // SMA under the same fault plan: fails fast, with the recovery bill
    // it refuses to pay.
    let sma = SmaOptimizer::new(SmaConfig {
        faults,
        recv_timeout: Some(Duration::from_millis(15)),
        ..SmaConfig::default()
    });
    match sma.try_optimize(&query, PlanSpace::Linear, Objective::Single, workers) {
        Ok(out) => println!(
            "\nSMA got lucky (no fatal fault fired before completion); a replica rebuild would \
             have cost {} bytes",
            out.metrics.replica_recovery_bytes
        ),
        Err(e) => {
            println!("\nSMA failed fast: {e}");
            if let Some(bill) = e.memo_rebroadcast_bytes() {
                println!(
                    "  replica recovery would re-broadcast {bill} bytes — versus one O(b_q) task \
                     re-issue ({} bytes) for MPQ",
                    query.to_bytes().len()
                );
            }
        }
    }
}
