//! Parametric query optimization: when predicate selectivities are not
//! known until run time, optimize once for the whole parameter range and
//! pick the right plan the moment the parameter binds — in parallel, with
//! the same plan-space partitioning as ordinary optimization.
//!
//! ```sh
//! cargo run --release --example parametric
//! ```

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use pqopt::dp::{
    interpolate, merge_parametric, optimize_parametric_partition, pick_for, ParametricQuery,
};
use pqopt::partition::partition_constraints;
use pqopt::prelude::*;

fn main() {
    // Two endpoint scenarios of the same 10-table query: at θ = 0 the
    // predicates are highly selective, at θ = 1 they are 100× weaker
    // (e.g. an unbound filter parameter).
    let low = WorkloadGenerator::new(WorkloadConfig::paper_default(10), 11).next_query();
    let mut high = low.clone();
    for p in &mut high.predicates {
        p.selectivity = (p.selectivity * 100.0).min(0.5);
    }
    let pq = ParametricQuery::new(low, high);

    // Parallel parametric optimization: one partition per "worker", the
    // master merges the per-partition frontiers (the parametric analogue
    // of Algorithm 1's FinalPrune).
    let m = 16u64;
    let outcome = merge_parametric(
        (0..m)
            .map(|id| {
                let cs = partition_constraints(10, PlanSpace::Linear, id, m);
                optimize_parametric_partition(&pq, PlanSpace::Linear, &cs)
            })
            .collect(),
    );

    println!(
        "parametric plan set: {} plans cover the whole parameter range\n",
        outcome.plans.len()
    );
    println!("{:>8} {:>14} {:>14}", "plan", "cost @ θ=0", "cost @ θ=1");
    for (i, (_, c)) in outcome.plans.iter().enumerate() {
        println!("{:>8} {:>14.4e} {:>14.4e}", i, c.time, c.buffer);
    }

    // At run time the parameter binds; plan selection is a linear scan
    // over the (small) plan set — no re-optimization.
    println!("\nrun-time selection:");
    for theta in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let plan = pick_for(&outcome, theta);
        let cost = outcome
            .plans
            .iter()
            .find(|(p, _)| p == plan)
            .map(|(_, c)| interpolate(c, theta))
            .unwrap();
        let order = plan.join_order().expect("left-deep");
        println!("  θ = {theta:<5} -> join order {order:?} (interpolated cost {cost:.4e})");
    }
}
