//! The persistent optimizer service: one resident cluster, many
//! concurrent queries.
//!
//! Run with `cargo run --release --example service`.
//!
//! The pre-service architecture spawned (and joined) a simulated cluster
//! per query, so thread setup — not optimization — dominated at high
//! query rates. This example streams a batch of queries through one
//! long-lived [`OptimizerService`] with several submissions in flight,
//! polls handles as the sessions complete in whatever order the cluster
//! produces them, and compares the wall-clock against spawn-per-query
//! mode on the identical workload.

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use pqopt::prelude::*;
use std::time::Instant;

const WORKERS: usize = 4;
const QUERIES: u64 = 16;

fn workload() -> Vec<Query> {
    (0..QUERIES)
        .map(|seed| {
            let tables = 6 + (seed as usize % 3);
            WorkloadGenerator::new(WorkloadConfig::paper_default(tables), seed).next_query()
        })
        .collect()
}

fn main() {
    let queries = workload();

    // Resident mode: spawn once, submit everything, poll to completion.
    let t0 = Instant::now();
    let mut service =
        OptimizerService::spawn(ServiceConfig::new(Backend::Mpq, WORKERS)).expect("spawn");
    let mut handles: Vec<(usize, ServiceHandle)> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let h = service
                .submit(q, PlanSpace::Linear, Objective::Single)
                .expect("submit");
            (i, h)
        })
        .collect();
    println!(
        "submitted {} queries to one {}-worker resident cluster",
        handles.len(),
        WORKERS
    );
    // Sessions finish in cluster order, not submission order; poll and
    // report as they land.
    while !handles.is_empty() {
        handles.retain_mut(|(i, handle)| match service.poll(handle) {
            None => true,
            Some(result) => {
                let plans = result.expect("session completes");
                println!(
                    "  query {i:>2} done: cost {:.3e}, {} plan(s)",
                    plans[0].cost().time,
                    plans.len()
                );
                false
            }
        });
        // Sleep rather than busy-spin between passes: a spinning poll
        // loop would steal a core from the workers and skew the
        // wall-clock comparison below.
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let resident = t0.elapsed();
    service.shutdown();

    // Spawn-per-query mode: the same workload, a fresh cluster each time.
    let t0 = Instant::now();
    for q in &queries {
        let mut one_shot =
            OptimizerService::spawn(ServiceConfig::new(Backend::Mpq, WORKERS)).expect("spawn");
        one_shot
            .optimize(q, PlanSpace::Linear, Objective::Single)
            .expect("optimize");
        one_shot.shutdown();
    }
    let per_query = t0.elapsed();

    println!(
        "resident: {:.1} ms   spawn-per-query: {:.1} ms   speedup: {:.2}x",
        resident.as_secs_f64() * 1e3,
        per_query.as_secs_f64() * 1e3,
        per_query.as_secs_f64() / resident.as_secs_f64().max(1e-9)
    );
}
