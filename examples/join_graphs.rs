//! Join-graph study (miniature Figure 3): because MPQ's dynamic program
//! enumerates the same admissible table sets regardless of predicate
//! structure (cross products allowed), the join graph shape has negligible
//! impact on optimization time — while the *plans* it picks differ
//! substantially.
//!
//! ```sh
//! cargo run --release --example join_graphs
//! ```

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use pqopt::prelude::*;

fn main() {
    let tables = 12;
    let optimizer = MpqOptimizer::new(MpqConfig::default());
    println!("MPQ on {tables}-table queries, 16 workers, linear plan space\n");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>16}",
        "graph", "time (ms)", "splits tried", "plan cost", "cross products"
    );
    for graph in JoinGraph::ALL {
        let mut generator = WorkloadGenerator::new(WorkloadConfig::with_graph(tables, graph), 99);
        let query = generator.next_query();
        let out = optimizer.optimize(&query, PlanSpace::Linear, Objective::Single, 16);
        let plan = &out.plans[0];
        let splits: u64 = out
            .metrics
            .worker_stats
            .iter()
            .map(|s| s.splits_tried)
            .sum();
        println!(
            "{:>8} {:>12.1} {:>14} {:>14.4e} {:>16}",
            format!("{graph:?}"),
            out.metrics.total_micros as f64 / 1e3,
            splits,
            plan.cost().time,
            count_cross_products(&query, plan),
        );
    }
    println!(
        "\nsplits tried is identical across graphs: the DP's work depends only\n\
         on the query size, which is exactly the paper's Figure 3 finding."
    );
}

/// Counts joins in `plan` that have no connecting predicate (pure cross
/// products).
fn count_cross_products(query: &Query, plan: &Plan) -> usize {
    match plan {
        Plan::Scan { .. } => 0,
        Plan::Join { left, right, .. } => {
            let crossing = query.join_selectivity(left.tables(), right.tables());
            let here = usize::from(crossing == 1.0);
            here + count_cross_products(query, left) + count_cross_products(query, right)
        }
    }
}
