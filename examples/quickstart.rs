//! Quickstart: optimize one join query on a simulated shared-nothing
//! cluster and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use pqopt::prelude::*;

fn main() {
    // A 10-table star-join query with Steinbrunn-style random statistics —
    // the workload family the paper benchmarks with.
    let mut generator = WorkloadGenerator::new(WorkloadConfig::paper_default(10), 42);
    let query = generator.next_query();
    println!(
        "query: {} tables, {} predicates, {:?} join graph",
        query.num_tables(),
        query.predicates.len(),
        query.graph
    );

    // Optimize over 8 simulated shared-nothing workers. Each worker
    // receives the query plus a plan-space partition ID, searches only its
    // partition, and returns its best plan; the master keeps the cheapest.
    let optimizer = MpqOptimizer::new(MpqConfig::default());
    let outcome = optimizer.optimize(&query, PlanSpace::Linear, Objective::Single, 8);

    let best = &outcome.plans[0];
    println!("\noptimal left-deep plan (cost {:.3e}):", best.cost().time);
    println!("{best}");
    println!("join order: {:?}", best.join_order().expect("left-deep"));

    let m = &outcome.metrics;
    println!("partitions used:        {}", m.partitions);
    println!(
        "total time:             {:.2} ms",
        m.total_micros as f64 / 1e3
    );
    println!(
        "max worker time:        {:.2} ms",
        m.max_worker_micros as f64 / 1e3
    );
    println!("network traffic:        {} bytes", m.network.total_bytes());
    println!("communication rounds:   {}", m.network.rounds);
    println!(
        "max worker memory:      {} relations",
        m.max_worker_stored_sets
    );

    // Sanity: the parallel result equals the classical serial optimum.
    let serial = optimize_serial(&query, PlanSpace::Linear, Objective::Single);
    assert_eq!(serial.plans[0].cost().time, best.cost().time);
    println!("\nverified: parallel optimum == serial optimum");
}
