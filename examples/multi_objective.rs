//! Multi-objective query optimization: approximate the Pareto frontier
//! over (execution time, buffer space) in parallel, and study the effect
//! of the approximation factor α.
//!
//! ```sh
//! cargo run --release --example multi_objective
//! ```

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use pqopt::prelude::*;

fn main() {
    let mut generator = WorkloadGenerator::new(WorkloadConfig::paper_default(12), 7);
    let query = generator.next_query();
    let optimizer = MpqOptimizer::new(MpqConfig::default());

    // Exact Pareto frontier (α = 1) over 16 workers. Each worker returns
    // the frontier of its plan-space partition; the master merges them.
    let exact = optimizer.optimize(
        &query,
        PlanSpace::Linear,
        Objective::Multi { alpha: 1.0 },
        16,
    );
    println!("exact Pareto frontier: {} plans", exact.plans.len());
    let mut frontier: Vec<_> = exact.plans.iter().map(|p| p.cost()).collect();
    frontier.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());
    for c in &frontier {
        println!("  time {:>12.4e}   buffer {:>12.4e}", c.time, c.buffer);
    }

    // α > 1 trades frontier resolution for optimization speed: every
    // possible plan is still α-dominated by some returned plan (the
    // formal guarantee of the pruning function, Trummer & Koch SIGMOD'14).
    println!("\nalpha sweep (16 workers):");
    println!(
        "{:>8} {:>8} {:>12} {:>14}",
        "alpha", "plans", "time (ms)", "worker memory"
    );
    for alpha in [1.0, 1.5, 2.0, 5.0, 10.0] {
        let out = optimizer.optimize(&query, PlanSpace::Linear, Objective::Multi { alpha }, 16);
        println!(
            "{:>8} {:>8} {:>12.2} {:>14}",
            alpha,
            out.plans.len(),
            out.metrics.total_micros as f64 / 1e3,
            out.metrics.max_worker_stored_sets
        );
        // Verify the guarantee against the exact frontier.
        for target in &exact.plans {
            assert!(
                out.plans
                    .iter()
                    .any(|p| p.cost().alpha_dominates(&target.cost(), alpha)),
                "α-guarantee violated"
            );
        }
    }
    println!("\nverified: every exact frontier point is α-covered at every α");
}
