//! End-to-end: optimize a query in parallel, then *execute* the chosen
//! plan on synthetic data and compare it against the plan a randomized
//! optimizer picks — connecting plan cost estimates to real work.
//!
//! ```sh
//! cargo run --release --example execute_plan
//! ```

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use pqopt::exec::operators::WorkCounter;
use pqopt::heuristics::{order_to_plan, IiConfig};
use pqopt::prelude::*;

fn main() {
    let mut generator = WorkloadGenerator::new(WorkloadConfig::paper_default(8), 21);
    let query = generator.next_query();

    // Optimize on 8 simulated shared-nothing workers.
    let optimizer = MpqOptimizer::new(MpqConfig::default());
    let outcome = optimizer.optimize(&query, PlanSpace::Bushy, Objective::Single, 8);
    let optimal = &outcome.plans[0];
    println!(
        "optimal plan (estimated cost {:.3e}):\n{optimal}",
        optimal.cost().time
    );

    // A randomized competitor: iterated improvement over join orders.
    let (order, ii_cost) = IterativeImprovement::new(IiConfig {
        restarts: 3,
        seed: 1,
    })
    .optimize(&query);
    let ii_plan = order_to_plan(&query, &order);
    println!(
        "iterated-improvement plan: estimated cost {:.3e} ({:.2}x the optimum)",
        ii_cost,
        ii_cost / optimal.cost().time
    );

    // Materialize synthetic tables consistent with the catalog statistics
    // (capped so the demo runs instantly) and execute both plans.
    let db = Database::generate(
        &query,
        &DataConfig {
            max_rows_per_table: 500,
            seed: 3,
        },
    );
    let (result_opt, stats_opt) = execute(&query, optimal, &db).expect("optimal plan runs");
    let (result_ii, stats_ii) = execute(&query, &ii_plan, &db).expect("II plan runs");

    println!("\nexecution on synthetic data (tables capped at 500 rows):");
    let report = |name: &str, rows: usize, w: &WorkCounter| {
        println!(
            "  {name:<22} result rows: {rows:>6}   comparisons: {:>10}   rows materialized: {:>8}",
            w.comparisons, w.rows_out
        );
    };
    report("optimal plan", result_opt.len(), &stats_opt.work);
    report("iterated improvement", result_ii.len(), &stats_ii.work);

    // Both plans answer the same query: identical result multisets.
    assert_eq!(result_opt.canonical_rows(), result_ii.canonical_rows());
    println!("\nverified: both plans produce the identical result multiset");
}
