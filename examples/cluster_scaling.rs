//! Scaling study: how optimization time, per-worker memory and network
//! traffic evolve as the simulated cluster grows — a miniature of the
//! paper's Figure 2, including the comparison against the SMA baseline's
//! network behaviour.
//!
//! ```sh
//! cargo run --release --example cluster_scaling
//! ```

// Tests/examples assert on infallible paths; the workspace-level
// unwrap/expect denies target shipping code (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use pqopt::prelude::*;

fn main() {
    let tables = 16;
    let mut generator = WorkloadGenerator::new(WorkloadConfig::paper_default(tables), 3);
    let query = generator.next_query();

    // A latency model in the spirit of the paper's Spark cluster: flat
    // message latency, per-KiB transfer cost, task-launch overhead.
    let latency = LatencyModel::cluster_like();
    let mpq = MpqOptimizer::new(MpqConfig {
        latency,
        ..MpqConfig::default()
    });
    let sma = SmaOptimizer::new(SmaConfig {
        latency,
        ..SmaConfig::default()
    });

    println!("MPQ scaling on a {tables}-table star query (linear plan space)");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "workers", "time (ms)", "W-time (ms)", "memory (rel)", "net (B)"
    );
    for workers in [1u64, 2, 4, 8, 16, 32, 64] {
        let out = mpq.optimize(&query, PlanSpace::Linear, Objective::Single, workers);
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>14} {:>12}",
            workers,
            out.metrics.total_micros as f64 / 1e3,
            out.metrics.max_worker_micros as f64 / 1e3,
            out.metrics.max_worker_stored_sets,
            out.metrics.network.total_bytes()
        );
    }

    // SMA ships its replicated memo level by level: watch the bytes.
    println!("\nSMA baseline on a 10-table query (larger sizes take minutes):");
    let query10 = WorkloadGenerator::new(WorkloadConfig::paper_default(10), 3).next_query();
    println!(
        "{:>8} {:>12} {:>12} {:>8}",
        "workers", "time (ms)", "net (B)", "rounds"
    );
    for workers in [1usize, 2, 4, 8] {
        let out = sma.optimize(&query10, PlanSpace::Linear, Objective::Single, workers);
        println!(
            "{:>8} {:>12.1} {:>12} {:>8}",
            workers,
            out.metrics.total_micros as f64 / 1e3,
            out.metrics.network.total_bytes(),
            out.metrics.rounds
        );
    }
    let mpq10 = mpq.optimize(&query10, PlanSpace::Linear, Objective::Single, 8);
    println!(
        "\nfor contrast, MPQ on the same 10-table query with 8 workers: \
         {} bytes in {} round(s)",
        mpq10.metrics.network.total_bytes(),
        mpq10.metrics.network.rounds
    );
}
